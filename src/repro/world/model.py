"""The assembled synthetic Internet and its forwarding behaviour.

:class:`World` is the single source of ground truth.  It exposes exactly
two kinds of behaviour to the measurement plane:

* :meth:`World.resolve_path` -- the forwarding decision for a probe from a
  cloud VM to a destination address, as a sequence of :class:`PlanHop`
  (which router answers, with which interface, from which metro);
* per-interface reachability/latency attributes consumed by the ping and
  reachability probers.

Inference code must never touch ground-truth fields (router ownership,
true metros, peering types); those are reserved for the evaluation layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.net.asn import ASN, ASRegistry
from repro.net.geo import MetroCatalog
from repro.net.ip import IPv4, Prefix, is_private, is_shared
from repro.world.addressing import AddressPlan
from repro.world.entities import (
    ClientAS,
    CloudExchange,
    ColoFacility,
    Interconnection,
    Interface,
    IXP,
    RegionTruth,
    Router,
)


def _stable_response(dst: IPv4, p: float) -> bool:
    """Deterministic per-destination response draw (Knuth-hash based).

    A destination either answers probes or does not -- consistently across
    regions and rounds -- so the draw must not consume campaign RNG state.
    """
    if p <= 0.0:
        return False
    return ((dst * 2654435761) & 0xFFFF) / 65536.0 < p


@dataclass(frozen=True)
class PlanHop:
    """One forwarding hop as the traceroute engine sees it."""

    router_id: int
    ip: IPv4
    metro_code: str
    responsiveness: float = 1.0


@dataclass
class PathPlan:
    """Resolved forwarding path for (cloud, region, destination).

    ``icx_id`` records which interconnection (if any) the path crosses --
    ground truth used only by evaluation, never by inference.
    """

    hops: List[PlanHop]
    dest_ip: IPv4
    dest_responds: bool
    exits_cloud: bool
    icx_id: Optional[int] = None


@dataclass
class Slash24Route:
    """Routing state for one instantiated /24."""

    prefix: Prefix
    owner_asn: ASN
    #: interconnections able to serve this /24 (their ids).
    serving_icx_ids: Tuple[int, ...]
    #: region name -> chosen egress icx id (hot-potato, precomputed).
    egress_by_region: Dict[str, int]
    #: router ids of the client-side chain between CBI router and the
    #: destination (internal routers; may include downstream-AS routers).
    chain_router_ids: Tuple[int, ...]
    #: probability that the destination host itself answers.
    dest_response_p: float = 0.08
    #: announced in the round-1 BGP snapshot?
    announced_r1: bool = True
    #: peer AS that carries this /24 (== owner for the AS's own space,
    #: the transit parent for downstream-stub space).
    carrier_asn: ASN = 0


class World:
    """Registries plus the forwarding function over them."""

    def __init__(
        self,
        config,
        catalog: MetroCatalog,
        as_registry: ASRegistry,
        plan: AddressPlan,
    ) -> None:
        self.config = config
        self.catalog = catalog
        self.as_registry = as_registry
        self.plan = plan

        self.routers: Dict[int, Router] = {}
        self.interfaces: Dict[IPv4, Interface] = {}
        self.facilities: Dict[int, ColoFacility] = {}
        self.ixps: Dict[int, IXP] = {}
        self.exchanges: Dict[int, CloudExchange] = {}
        self.interconnections: Dict[int, Interconnection] = {}
        self.client_ases: Dict[ASN, ClientAS] = {}
        #: cloud name -> region name -> RegionTruth
        self.regions: Dict[str, Dict[str, RegionTruth]] = {}
        #: ordered probing targets, /24 -> route
        self.routes: Dict[int, Slash24Route] = {}
        #: (cloud, /24 network) -> [(subnet prefix, icx_id)] interconnect space
        self.infra_subnets: Dict[Tuple[str, int], List[Tuple[Prefix, int]]] = {}
        #: cloud name -> per-icx access-path tails keyed by (region, icx)
        self._tail_cache: Dict[Tuple[str, str, int], Tuple[List[PlanHop], IPv4]] = {}
        #: backbone hop per (cloud, from_region, to_metro)
        self.backbone_hops: Dict[Tuple[str, str], PlanHop] = {}
        #: interfaces answering pings from the public Internet
        self.publicly_reachable: Set[IPv4] = set()
        #: interface ip -> path metros (after the VM metro) for RTT legs
        self.via_metros: Dict[IPv4, Tuple[str, ...]] = {}
        #: interface ip -> restrict ping visibility to these region names
        self.ping_region_limit: Dict[IPv4, Set[str]] = {}
        #: every /24 worth sweeping in round 1 (campaign target universe)
        self.sweep_slash24s: List[Prefix] = []
        #: interconnections of other clouds (for VPI probing), by cloud
        self.other_cloud_icx: Dict[str, Dict[int, Interconnection]] = {}
        #: (cloud, carrier asn) -> that cloud's mirror interconnections
        self.client_other_egress: Dict[Tuple[str, ASN], List[int]] = {}
        #: (cloud, amazon icx id) -> that cloud's mirror of the same port
        self.mirror_of: Dict[Tuple[str, int], int] = {}
        #: BGP-announced blocks per cloud (infra blocks stay WHOIS-only)
        self.cloud_announced_blocks: Dict[str, List[Prefix]] = {}
        self.cloud_infra_blocks: Dict[str, List[Prefix]] = {}
        #: (cloud, region) -> transit hop used when no direct peering exists
        self.transit_hops: Dict[Tuple[str, str], PlanHop] = {}
        #: client asn -> transit-facing interface of its primary border router
        self.client_transit_iface: Dict[ASN, Tuple[int, IPv4]] = {}
        #: (cloud, region) -> the cloud's own border hop toward the Internet
        self.cloud_border_hops: Dict[Tuple[str, str], PlanHop] = {}
        #: (carrier asn, region) -> default egress icx for announced space
        #: that has no instantiated /24 route
        self.client_default_egress: Dict[Tuple[ASN, str], int] = {}
        #: owning asn -> peer AS carrying its space (stubs map to parent)
        self.asn_carrier: Dict[ASN, ASN] = {}
        #: border router -> its backbone-facing interface: the incoming
        #: interface it answers with when probe traffic arrives over the
        #: cloud backbone instead of from the local region (§7.4: this
        #: sharing is what fuses the ICG into one giant component)
        self.router_backbone_iface: Dict[int, IPv4] = {}

    # ------------------------------------------------------------------
    # registry helpers (used by the builder)
    # ------------------------------------------------------------------

    def add_router(self, router: Router) -> Router:
        if router.router_id in self.routers:
            raise ValueError(f"duplicate router id {router.router_id}")
        self.routers[router.router_id] = router
        return router

    def add_interface(self, iface: Interface) -> Interface:
        if iface.ip in self.interfaces:
            raise ValueError(f"duplicate interface ip {iface.ip}")
        self.interfaces[iface.ip] = iface
        self.routers[iface.router_id].add_interface_ip(iface.ip)
        return iface

    def metro_of_router(self, router_id: int) -> str:
        metro = self.routers[router_id].metro_code
        if metro is None:
            raise ValueError(f"router {router_id} has no metro")
        return metro

    def interface_router(self, ip: IPv4) -> Optional[Router]:
        iface = self.interfaces.get(ip)
        return self.routers[iface.router_id] if iface else None

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------

    def region(self, cloud: str, name: str) -> RegionTruth:
        return self.regions[cloud][name]

    def region_names(self, cloud: str) -> List[str]:
        return sorted(self.regions.get(cloud, {}))

    def _icx_store(self, cloud: str) -> Dict[int, Interconnection]:
        if cloud == "amazon":
            return self.interconnections
        return self.other_cloud_icx.get(cloud, {})

    def _tail_for(
        self, cloud: str, region_name: str, icx_id: int, dst: IPv4
    ) -> List[PlanHop]:
        """Hops from the region edge to (and including) the ABI.

        The pre-ABI hops are cached per (cloud, region, icx); the ABI hop
        itself depends on the destination because of ECMP: probes hashed
        onto different parallel links cross different border interfaces.
        """
        key = (cloud, region_name, icx_id)
        cached = self._tail_cache.get(key)
        icx = self._icx_store(cloud)[icx_id]
        if cached is None:
            region = self.regions[cloud][region_name]
            pre: List[PlanHop] = []
            options: Tuple[IPv4, ...] = icx.abi_ecmp or (icx.abi_ip,)
            if icx.metro_code != region.metro_code:
                bb = self.backbone_hops.get((cloud, region_name))
                if bb is not None:
                    pre.append(bb)
                # Traffic arriving over the backbone may hit the border
                # router on its backbone-facing link interface instead of
                # one of the fabric-facing ones -- that shared interface is
                # what fuses the ICG across peerings (§7.4).
                backbone_iface = self.router_backbone_iface.get(icx.abi_router_id)
                if backbone_iface is not None:
                    options = options + (backbone_iface,)
            if icx.agg_abi_ip is not None:
                agg_iface = self.interfaces.get(icx.agg_abi_ip)
                if agg_iface is not None:
                    agg_router = self.routers[agg_iface.router_id]
                    pre.append(
                        PlanHop(
                            router_id=agg_iface.router_id,
                            ip=icx.agg_abi_ip,
                            metro_code=icx.metro_code,
                            responsiveness=agg_router.responsiveness,
                        )
                    )
            cached = (pre, options)
            self._tail_cache[key] = cached
        pre, options = cached
        if len(options) > 1:
            abi_ip = options[((dst * 2654435761) >> 7) % len(options)]
        else:
            abi_ip = options[0]
        iface = self.interfaces.get(abi_ip)
        router_id = iface.router_id if iface is not None else icx.abi_router_id
        abi_router = self.routers[router_id]
        return list(pre) + [
            PlanHop(
                router_id=router_id,
                ip=abi_ip,
                metro_code=icx.abi_metro_code or icx.metro_code,
                responsiveness=abi_router.responsiveness,
            )
        ]

    def _cbi_hop(self, icx: Interconnection) -> PlanHop:
        router = self.routers[icx.cbi_router_id]
        return PlanHop(
            router_id=icx.cbi_router_id,
            ip=icx.cbi_ip,
            metro_code=icx.client_metro_code,
            responsiveness=router.responsiveness,
        )

    def _chain_hops(self, chain_router_ids: Sequence[int]) -> List[PlanHop]:
        hops: List[PlanHop] = []
        for rid in chain_router_ids:
            router = self.routers[rid]
            if not router.interface_ips:
                continue
            hops.append(
                PlanHop(
                    router_id=rid,
                    ip=router.interface_ips[0],
                    metro_code=router.metro_code or "???",
                    responsiveness=router.responsiveness,
                )
            )
        return hops

    def _lookup_icx_for_infra(self, cloud: str, dst: IPv4) -> Optional[int]:
        """Connected-route lookup: is dst inside an interconnect /24?"""
        entries = self.infra_subnets.get((cloud, dst & 0xFFFFFF00))
        if not entries:
            return None
        for subnet, icx_id in entries:
            if dst in subnet:
                return icx_id
        return None

    def _transit_path(
        self,
        cloud: str,
        region_name: str,
        base: List[PlanHop],
        route: Slash24Route,
        dst: IPv4,
    ) -> PathPlan:
        """Path through a transit provider (no direct cloud<->client peering).

        Used by the other clouds when probing the VPI target pool: the
        client's border router answers with its transit-facing interface,
        which never collides with an Amazon CBI (§7.1's soundness case).
        """
        hops = list(base)
        border = self.cloud_border_hops.get((cloud, region_name))
        if border is not None:
            hops.append(border)
        transit = self.transit_hops.get((cloud, region_name))
        if transit is not None:
            hops.append(transit)
        entry = self.client_transit_iface.get(route.carrier_asn)
        if entry is not None:
            rid, ip = entry
            router = self.routers[rid]
            hops.append(
                PlanHop(
                    router_id=rid,
                    ip=ip,
                    metro_code=router.metro_code or "IAD",
                    responsiveness=router.responsiveness,
                )
            )
        hops.extend(self._chain_hops(route.chain_router_ids))
        return PathPlan(
            hops=hops,
            dest_ip=dst,
            dest_responds=route.dest_response_p > 0.0,
            exits_cloud=True,
            icx_id=None,
        )

    def resolve_path(
        self, cloud: str, region_name: str, dst: IPv4, snapshot: str = "r1"
    ) -> PathPlan:
        """Forwarding decision for a probe from ``region_name`` to ``dst``.

        ``snapshot`` is accepted for symmetry with annotation but routing
        does not depend on it: Amazon routes to connected interconnect
        subnets whether or not they are publicly announced.
        """
        region = self.regions[cloud][region_name]
        base: List[PlanHop] = [
            PlanHop(router_id=rid, ip=ip, metro_code=region.metro_code)
            for rid, ip in region.internal_path
        ]

        if is_private(dst) or is_shared(dst):
            return PathPlan(hops=base[:1], dest_ip=dst, dest_responds=False, exits_cloud=False)

        # 1. connected interconnect subnets (most specific; routed even
        #    when the covering block is absent from BGP).
        icx_id = self._lookup_icx_for_infra(cloud, dst)
        chain: Tuple[int, ...] = ()
        dest_p = 0.0
        if icx_id is None and cloud != "amazon":
            # A probe from another cloud toward an Amazon-facing port
            # subnet reaches that specific port's router, which answers
            # over its VLAN to the probing cloud (the §7.1 overlap).
            amazon_icx = self._lookup_icx_for_infra("amazon", dst)
            if amazon_icx is not None:
                icx_id = self.mirror_of.get((cloud, amazon_icx))
        if icx_id is None:
            # 2. instantiated /24 routes (the hot path).
            route = self.routes.get(dst & 0xFFFFFF00)
            if route is None:
                # 3. fall back to the allocation registry.
                return self._registry_path(cloud, region_name, dst, base)
            if cloud == "amazon":
                icx_id = route.egress_by_region.get(region_name)
            else:
                mirrors = self.client_other_egress.get((cloud, route.carrier_asn))
                if not mirrors:
                    return self._transit_path(cloud, region_name, base, route, dst)
                store = self._icx_store(cloud)
                region_metro = self.regions[cloud][region_name].metro_code
                icx_id = min(
                    mirrors,
                    key=lambda i: self.catalog.distance_km(
                        region_metro, store[i].metro_code
                    ),
                )
            chain = route.chain_router_ids
            dest_p = route.dest_response_p

        if icx_id is None:
            # No route: the probe dies inside the cloud backbone.
            return PathPlan(hops=base, dest_ip=dst, dest_responds=False, exits_cloud=False)

        store = self._icx_store(cloud)
        icx = store.get(icx_id)
        if icx is None or icx.uses_private_addresses:
            # Private-address VPIs are isolated in the customer's VPC and
            # invisible to probes from any other customer's VM (§2, §9).
            return PathPlan(hops=base, dest_ip=dst, dest_responds=False, exits_cloud=False)

        hops = list(base)
        hops.extend(self._tail_for(cloud, region_name, icx_id, dst))
        hops.append(self._cbi_hop(icx))
        hops.extend(self._chain_hops(chain))
        return PathPlan(
            hops=hops,
            dest_ip=dst,
            dest_responds=_stable_response(dst, dest_p),
            exits_cloud=True,
            icx_id=icx_id,
        )

    def _registry_path(
        self, cloud: str, region_name: str, dst: IPv4, base: List[PlanHop]
    ) -> PathPlan:
        """Path for destinations with no /24 route: cloud space, announced
        client space without instantiated /24s, or dead space."""
        alloc = self.plan.owner_of(dst)
        if alloc is None:
            return PathPlan(hops=base, dest_ip=dst, dest_responds=False, exits_cloud=False)
        if alloc.category == "cloud":
            if alloc.holder_name == cloud:
                return PathPlan(hops=base, dest_ip=dst, dest_responds=False, exits_cloud=False)
            # Another cloud's space: one hop into that cloud, then opaque.
            hops = list(base)
            border = self.cloud_border_hops.get((cloud, region_name))
            if border is not None:
                hops.append(border)
            return PathPlan(hops=hops, dest_ip=dst, dest_responds=False, exits_cloud=True)
        if alloc.category in ("client", "infra"):
            carrier = self.asn_carrier.get(alloc.owner_asn)
            if carrier is None:
                return PathPlan(
                    hops=base, dest_ip=dst, dest_responds=False, exits_cloud=False
                )
            if cloud != "amazon":
                pseudo = Slash24Route(
                    prefix=Prefix.of(dst, 24),
                    owner_asn=alloc.owner_asn,
                    serving_icx_ids=(),
                    egress_by_region={},
                    chain_router_ids=(),
                    dest_response_p=0.0,
                    carrier_asn=carrier,
                )
                return self._transit_path(cloud, region_name, base, pseudo, dst)
            icx_id = self.client_default_egress.get((carrier, region_name))
            if icx_id is not None:
                icx = self.interconnections.get(icx_id)
                if icx is not None and not icx.uses_private_addresses:
                    hops = list(base)
                    hops.extend(self._tail_for(cloud, region_name, icx_id, dst))
                    hops.append(self._cbi_hop(icx))
                    return PathPlan(
                        hops=hops,
                        dest_ip=dst,
                        dest_responds=False,
                        exits_cloud=True,
                        icx_id=icx_id,
                    )
        return PathPlan(hops=base, dest_ip=dst, dest_responds=False, exits_cloud=False)

    # ------------------------------------------------------------------
    # latency ground truth (consumed by the ping prober)
    # ------------------------------------------------------------------

    def rtt_legs_ms(self, cloud: str, region_name: str, ip: IPv4) -> Optional[float]:
        """Base (propagation-only) RTT from a region's VM to an interface.

        Returns ``None`` when the interface is not reachable from that
        region (never routed there, or ping-restricted).
        """
        iface = self.interfaces.get(ip)
        if iface is None:
            return None
        limit = self.ping_region_limit.get(ip)
        if limit is not None and region_name not in limit:
            return None
        region = self.regions[cloud][region_name]
        legs = self.via_metros.get(ip)
        if legs is None:
            router = self.routers[iface.router_id]
            legs = (router.metro_code or region.metro_code,)
        total = 0.0
        cur = region.metro_code
        for code in legs:
            total += self.catalog.rtt_ms(cur, code)
            cur = code
        return total

    # ------------------------------------------------------------------
    # evaluation-only ground truth accessors
    # ------------------------------------------------------------------

    def true_metro_of_interface(self, ip: IPv4) -> Optional[str]:
        router = self.interface_router(ip)
        return router.metro_code if router else None

    def true_owner_of_interface(self, ip: IPv4) -> Optional[ASN]:
        router = self.interface_router(ip)
        return router.owner_asn if router else None

    def true_abis(self) -> Set[IPv4]:
        return {icx.abi_ip for icx in self.interconnections.values()}

    def true_cbis(self) -> Set[IPv4]:
        return {icx.cbi_ip for icx in self.interconnections.values()}

    def true_vpi_cbis(self) -> Set[IPv4]:
        return {
            icx.cbi_ip
            for icx in self.interconnections.values()
            if icx.is_virtual
        }
