"""Construction of border routers, ports, and interconnections.

This module owns the two interface pools whose sharing patterns drive the
paper's population shapes:

* :class:`AmazonBorderPool` -- Amazon-side border routers and their ABI
  interfaces.  ABIs are far fewer than CBIs (3.77k vs 24.75k in the paper)
  because many client interconnections land on the same Amazon interface;
  the pool reuses existing interfaces with high probability, which yields
  the skewed ABI degree distribution of Fig. 7a.
* :class:`ClientFabric` -- client border routers, one per (AS, metro),
  whose accumulated interfaces become the alias sets of §5.2.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.net.asn import ASN
from repro.net.ip import AddressPool, IPv4, InterconnectSubnet
from repro.world.entities import Interface, Router, RouterRole
from repro.world.model import World


class IdSource:
    """Monotonic integer id allocator shared by the builder."""

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def take(self) -> int:
        value = self._next
        self._next += 1
        return value


class AmazonBorderPool:
    """Amazon border routers per metro, with reuse-biased ABI allocation."""

    def __init__(
        self,
        world: World,
        ids: IdSource,
        rng: random.Random,
        announced_pool: AddressPool,
        infra_pool: AddressPool,
        abi_whois_rate: float,
        new_abi_rate: float,
        owner_asn: ASN,
        unresponsive_rate: float = 0.0,
    ) -> None:
        self.world = world
        self.ids = ids
        self.rng = rng
        self.announced_pool = announced_pool
        self.infra_pool = infra_pool
        self.abi_whois_rate = abi_whois_rate
        self.new_abi_rate = new_abi_rate
        self.owner_asn = owner_asn
        self.unresponsive_rate = unresponsive_rate
        #: metro -> border routers there
        self._routers_by_metro: Dict[str, List[int]] = {}
        #: (metro, bucket) -> existing ABI ips available for reuse
        self._abi_buckets: Dict[Tuple[str, str], List[IPv4]] = {}

    def ensure_metro(self, metro_code: str, router_count: int, facility_id: Optional[int]) -> None:
        """Create ``router_count`` border routers at a metro (idempotent)."""
        existing = self._routers_by_metro.setdefault(metro_code, [])
        while len(existing) < router_count:
            router = Router(
                router_id=self.ids.take(),
                owner_asn=self.owner_asn,
                role=RouterRole.CLOUD_BORDER,
                metro_code=metro_code,
                facility_id=facility_id,
                responsiveness=1.0
                if self.rng.random() >= self.unresponsive_rate
                else 0.0,
            )
            self.world.add_router(router)
            existing.append(router.router_id)
            # Backbone-facing interface: what the router answers with when
            # probes arrive over the cloud backbone (always cloud-owned
            # infrastructure space).
            bb_ip = self.infra_pool.allocate()
            self.world.add_interface(
                Interface(ip=bb_ip, router_id=router.router_id, addr_owner_asn=self.owner_asn)
            )
            self.world.via_metros[bb_ip] = (metro_code,)
            self.world.router_backbone_iface[router.router_id] = bb_ip

    def metros(self) -> List[str]:
        return sorted(self._routers_by_metro)

    def has_metro(self, metro_code: str) -> bool:
        return bool(self._routers_by_metro.get(metro_code))

    def router_at(self, metro_code: str) -> int:
        routers = self._routers_by_metro.get(metro_code)
        if not routers:
            raise KeyError(f"Amazon has no border router at {metro_code}")
        return self.rng.choice(routers)

    def _new_abi_ip(self) -> IPv4:
        pool = (
            self.infra_pool
            if self.rng.random() < self.abi_whois_rate
            else self.announced_pool
        )
        return pool.allocate()

    def acquire_abi(self, metro_code: str, bucket: str) -> Tuple[int, IPv4]:
        """Return (router_id, abi_ip) at a metro, reusing interfaces.

        ``bucket`` separates public-facing (per-IXP) interfaces from
        private-fabric ones so IXP ABIs are only shared among IXP members.
        """
        key = (metro_code, bucket)
        existing = self._abi_buckets.get(key)
        if existing and self.rng.random() >= self.new_abi_rate:
            ip = self.rng.choice(existing)
            return self.world.interfaces[ip].router_id, ip
        router_id = self.router_at(metro_code)
        ip = self._new_abi_ip()
        self.world.add_interface(
            Interface(ip=ip, router_id=router_id, addr_owner_asn=self.owner_asn)
        )
        self.world.via_metros[ip] = (metro_code,)
        self._abi_buckets.setdefault(key, []).append(ip)
        return router_id, ip


class ClientFabric:
    """Client-side border routers and their response interfaces.

    Routers are rotated once they accumulate ``max_ifaces_per_router``
    interfaces, so large peers deploy several routers per metro -- which
    keeps alias-set sizes in the skewed-but-small regime of §5.2 (the
    paper saw 8.68k interfaces across 2.64k sets).
    """

    def __init__(
        self,
        world: World,
        ids: IdSource,
        rng: random.Random,
        max_ifaces_per_router: int = 6,
    ) -> None:
        self.world = world
        self.ids = ids
        self.rng = rng
        self.max_ifaces_per_router = max_ifaces_per_router
        #: (asn, metro) -> router ids at that metro, newest last
        self._border_routers: Dict[Tuple[ASN, str], List[int]] = {}

    def border_router(self, asn: ASN, metro_code: str, unresponsive_rate: float) -> int:
        """Get (or create) an AS border router at a metro with free slots."""
        key = (asn, metro_code)
        routers = self._border_routers.setdefault(key, [])
        if routers:
            current = routers[-1]
            if len(self.world.routers[current].interface_ips) < self.max_ifaces_per_router:
                return current
        router = Router(
            router_id=self.ids.take(),
            owner_asn=asn,
            role=RouterRole.CLIENT_BORDER,
            metro_code=metro_code,
            responsiveness=1.0 if self.rng.random() >= unresponsive_rate else 0.0,
        )
        self.world.add_router(router)
        routers.append(router.router_id)
        return router.router_id

    def add_cbi_interface(
        self,
        router_id: int,
        ip: IPv4,
        addr_owner_asn: ASN,
        via_metros: Tuple[str, ...],
        shared_port_response: bool = False,
        dns_name: Optional[str] = None,
    ) -> Interface:
        iface = Interface(
            ip=ip,
            router_id=router_id,
            addr_owner_asn=addr_owner_asn,
            shared_port_response=shared_port_response,
            dns_name=dns_name,
        )
        self.world.add_interface(iface)
        self.world.via_metros[ip] = via_metros
        return iface

    def routers_of(self, asn: ASN) -> List[int]:
        out: List[int] = []
        for (a, _m), rids in self._border_routers.items():
            if a == asn:
                out.extend(rids)
        return out


def register_interconnect_subnet(
    world: World, subnet: InterconnectSubnet, icx_id: int, cloud: str = "amazon"
) -> None:
    """Index a subnet for connected-route lookups (expansion probing)."""
    from repro.net.ip import Prefix

    p24 = Prefix.of(subnet.prefix.network, 24)
    world.infra_subnets.setdefault((cloud, p24.network), []).append(
        (subnet.prefix, icx_id)
    )
