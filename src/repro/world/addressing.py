"""Global address plan for the synthetic Internet.

Carves the IPv4 space into superblocks per role (cloud backbones, client
networks, client infrastructure, IXP peering LANs, interconnect pools) and
records ground-truth ownership of every allocation.  The WHOIS dataset is a
(slightly lossy) view of this registry; the BGP dataset sees only what each
AS chooses to announce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.asn import ASN
from repro.net.ip import (
    AddressPool,
    IPv4,
    InterconnectSubnet,
    Prefix,
    PrefixAllocator,
)


@dataclass
class Allocation:
    """One registered block: prefix, owner, and registry label."""

    prefix: Prefix
    owner_asn: ASN
    holder_name: str
    category: str      # "cloud" | "client" | "infra" | "ixp"


class AddressPlan:
    """Owns the superblock allocators and the ground-truth registry.

    The plan deliberately mirrors real address-space texture: client
    *network* space (announced, carries end hosts) is distinct from client
    *infrastructure* space (router links, often never announced -- the
    WHOIS-only CBIs of Table 1), and cloud-provided interconnect subnets
    come out of the cloud's own block (the Fig. 2 ambiguity).
    """

    #: superblock name -> parent prefix
    SUPERBLOCKS: Dict[str, str] = {
        "amazon": "52.0.0.0/9",
        "microsoft": "40.64.0.0/10",
        "google": "34.64.0.0/10",
        "ibm": "158.0.0.0/10",
        "oracle": "129.128.0.0/10",
        "client": "60.0.0.0/6",        # announced client network space
        "infra": "96.0.0.0/8",         # client infrastructure (link) space
        "ixp": "185.0.0.0/10",         # IXP peering LANs
        "transit": "120.0.0.0/8",      # transit-provider link space
    }

    def __init__(self) -> None:
        self._allocators: Dict[str, PrefixAllocator] = {
            name: PrefixAllocator(Prefix.parse(text))
            for name, text in self.SUPERBLOCKS.items()
        }
        self.allocations: List[Allocation] = []
        self._alloc_index: List[Tuple[int, int, int]] = []  # (first, last, idx)
        self._sorted = True

    # -- raw allocation --------------------------------------------------

    def allocate(
        self, superblock: str, length: int, owner_asn: ASN, holder_name: str, category: str
    ) -> Prefix:
        """Allocate a /``length`` from ``superblock`` and register it."""
        prefix = self._allocators[superblock].allocate(length)
        self.allocations.append(
            Allocation(prefix=prefix, owner_asn=owner_asn, holder_name=holder_name, category=category)
        )
        self._alloc_index.append((prefix.first, prefix.last, len(self.allocations) - 1))
        self._sorted = False
        return prefix

    def allocator_for(self, superblock: str) -> PrefixAllocator:
        return self._allocators[superblock]

    # -- convenience carvers ---------------------------------------------

    def cloud_block(self, cloud: str, length: int, owner_asn: ASN) -> Prefix:
        return self.allocate(cloud, length, owner_asn, cloud, "cloud")

    def client_network(self, asn: ASN, name: str, length: int) -> Prefix:
        return self.allocate("client", length, asn, name, "client")

    def client_infra(self, asn: ASN, name: str, length: int = 24) -> Prefix:
        return self.allocate("infra", length, asn, name, "infra")

    def ixp_lan(self, ixp_name: str, length: int = 22) -> Prefix:
        # IXP LANs belong to the exchange itself; owner 0 keeps them out of
        # any member's announced space.
        return self.allocate("ixp", length, 0, ixp_name, "ixp")

    def transit_link_block(self, asn: ASN, name: str, length: int = 24) -> Prefix:
        return self.allocate("transit", length, asn, name, "infra")

    # -- interconnect subnets --------------------------------------------

    def carve_interconnect(
        self,
        provided_by: str,
        client_block: Optional[Prefix],
        cloud_pool: AddressPool,
        client_cursor: Dict[Prefix, int],
        length: int = 30,
    ) -> InterconnectSubnet:
        """Carve a /30 (or /31) interconnect subnet.

        ``provided_by="client"`` takes the next free sub-prefix of the
        client's infrastructure block (tracked in ``client_cursor``);
        ``provided_by="provider"`` pulls addresses from the cloud's own
        pool, producing the Fig. 2 overshoot case.
        """
        size = 1 << (32 - length)
        if provided_by == "client":
            if client_block is None:
                raise ValueError("client-provided subnet needs a client block")
            offset = client_cursor.get(client_block, 0)
            network = client_block.network + offset
            if network + size - 1 > client_block.last:
                raise ValueError(f"infra block exhausted: {client_block}")
            client_cursor[client_block] = offset + size
            prefix = Prefix(network, length)
            if length == 31:
                a, b = prefix.network, prefix.network + 1
            else:
                a, b = prefix.network + 1, prefix.network + 2
            return InterconnectSubnet(
                prefix=prefix, provider_side=a, client_side=b, provided_by="client"
            )
        if provided_by == "provider":
            # Two consecutive addresses from the cloud pool act as the /31.
            a = cloud_pool.allocate()
            b = cloud_pool.allocate()
            prefix = Prefix.of(a, length)
            return InterconnectSubnet(
                prefix=prefix, provider_side=a, client_side=b, provided_by="provider"
            )
        raise ValueError(f"bad provided_by: {provided_by!r}")

    # -- ownership lookups (ground truth; feeds WHOIS) ---------------------

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._alloc_index.sort()
            self._sorted = True

    def owner_of(self, addr: IPv4) -> Optional[Allocation]:
        """Most-specific registered allocation covering ``addr``."""
        self._ensure_sorted()
        # Binary search over sorted, non-overlapping-by-construction blocks.
        lo, hi = 0, len(self._alloc_index) - 1
        best: Optional[Allocation] = None
        while lo <= hi:
            mid = (lo + hi) // 2
            first, last, idx = self._alloc_index[mid]
            if addr < first:
                hi = mid - 1
            elif addr > last:
                lo = mid + 1
            else:
                best = self.allocations[idx]
                break
        return best

    def allocations_of(self, category: str) -> List[Allocation]:
        return [a for a in self.allocations if a.category == category]
