"""Peering-profile mixture and per-group population statistics.

The paper's Table 6 is a census of which *combinations* of peering types
Amazon's 3.55k peer ASes maintain, and Table 5 / Fig. 6 report per-group
population statistics (CBIs and ABIs per AS, customer-cone sizes, metro
spread).  The world builder samples client-AS profiles from this census so
that a synthetic world of any scale reproduces the published mixture --
the inference pipeline then has to *rediscover* it from measurements.

Group label notation follows the paper: ``Pb``/``Pr`` public/private,
``B``/``nB`` visible/not visible in BGP, ``V``/``nV`` virtual/physical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

# The six peering groups of Table 5.
PB_NB = "Pb-nB"
PB_B = "Pb-B"
PR_NB_V = "Pr-nB-V"
PR_NB_NV = "Pr-nB-nV"
PR_B_NV = "Pr-B-nV"
PR_B_V = "Pr-B-V"

ALL_GROUPS: Tuple[str, ...] = (PB_NB, PB_B, PR_NB_V, PR_NB_NV, PR_B_NV, PR_B_V)

#: Table 6 verbatim: peering-type combination -> number of ASes.
HYBRID_CENSUS: Dict[FrozenSet[str], int] = {
    frozenset({PB_NB}): 2187,
    frozenset({PR_NB_NV}): 686,
    frozenset({PR_NB_NV, PB_NB}): 207,
    frozenset({PB_B}): 117,
    frozenset({PR_NB_NV, PR_NB_V}): 83,
    frozenset({PR_NB_NV, PB_NB, PR_NB_V}): 60,
    frozenset({PB_NB, PR_NB_V}): 41,
    frozenset({PR_NB_V}): 38,
    frozenset({PR_B_NV, PB_B}): 37,
    frozenset({PR_B_V, PR_B_NV, PB_B}): 31,
    frozenset({PR_B_NV}): 24,
    frozenset({PR_B_V, PR_B_NV}): 16,
    frozenset({PR_NB_NV, PR_B_NV, PR_B_V}): 5,
    frozenset({PR_B_V, PB_B}): 4,
    frozenset({PR_B_V}): 4,
    frozenset({PB_NB, PB_B}): 2,
    frozenset({PR_NB_NV, PR_B_NV, PR_B_V, PB_B}): 2,
    frozenset({PR_NB_NV, PR_B_NV}): 1,
    frozenset({PR_NB_NV, PR_B_NV, PB_B}): 1,
    frozenset({PR_NB_NV, PR_NB_V, PR_B_NV}): 1,
    frozenset({PR_NB_NV, PR_NB_V, PR_B_NV, PR_B_V, PB_B}): 1,
}

#: Total AS count implied by the census (~= the paper's 3.55k peers).
CENSUS_TOTAL = sum(HYBRID_CENSUS.values())


@dataclass(frozen=True)
class GroupStats:
    """Per-group population statistics used to size a sampled AS.

    ``cbis_per_as`` / ``abis_per_as`` are arithmetic means implied by
    Table 5 (CBIs / ASes and ABIs / ASes per group); ``cone_median`` is the
    order of magnitude of the BGP /24 customer cone from Fig. 6 (row 1);
    ``metro_spread`` approximates Fig. 6 row 6.  ``sigma`` sets the skew of
    the lognormal draws.
    """

    label: str
    cbis_per_as: float
    abis_per_as: float
    cone_median: float
    cone_sigma: float
    metro_spread: float
    kind_weights: Dict[str, float]   # ASKind -> sampling weight


# Derived from Table 5 (counts per group / ASes per group) and Fig. 6.
GROUP_STATS: Dict[str, GroupStats] = {
    PB_NB: GroupStats(
        label=PB_NB,
        cbis_per_as=3.93e3 / 2.52e3,   # ~1.6
        abis_per_as=0.4,
        cone_median=4.0,
        cone_sigma=1.6,
        metro_spread=1.3,
        kind_weights={"content": 0.25, "enterprise": 0.35, "access": 0.25, "tier2": 0.15},
    ),
    PB_B: GroupStats(
        label=PB_B,
        cbis_per_as=0.56e3 / 0.20e3,   # ~2.8
        abis_per_as=2.8,
        cone_median=200.0,
        cone_sigma=1.5,
        metro_spread=2.5,
        kind_weights={"tier2": 0.8, "access": 0.2},
    ),
    PR_NB_V: GroupStats(
        label=PR_NB_V,
        cbis_per_as=2.99e3 / 0.24e3,   # ~12.5
        abis_per_as=2.3,
        cone_median=15.0,
        cone_sigma=1.8,
        metro_spread=2.0,
        kind_weights={"enterprise": 0.45, "content": 0.2, "tier2": 0.25, "access": 0.1},
    ),
    PR_NB_NV: GroupStats(
        label=PR_NB_NV,
        cbis_per_as=10.24e3 / 1.1e3,   # ~9.3
        abis_per_as=2.4,
        cone_median=10.0,
        cone_sigma=1.8,
        metro_spread=2.2,
        kind_weights={"enterprise": 0.55, "content": 0.2, "access": 0.15, "tier2": 0.1},
    ),
    PR_B_NV: GroupStats(
        label=PR_B_NV,
        cbis_per_as=5.67e3 / 0.11e3,   # ~51.5
        abis_per_as=19.0,
        cone_median=20000.0,
        cone_sigma=1.2,
        metro_spread=9.0,
        kind_weights={"tier1": 0.9, "tier2": 0.1},
    ),
    PR_B_V: GroupStats(
        label=PR_B_V,
        cbis_per_as=2.09e3 / 0.06e3,   # ~35
        abis_per_as=5.5,
        cone_median=8000.0,
        cone_sigma=1.3,
        metro_spread=7.0,
        kind_weights={"tier1": 0.6, "tier2": 0.3, "access": 0.1},
    ),
}


def group_is_public(group: str) -> bool:
    return group in (PB_NB, PB_B)


def group_is_bgp_visible(group: str) -> bool:
    return group in (PB_B, PR_B_NV, PR_B_V)


def group_is_virtual(group: str) -> bool:
    return group in (PR_NB_V, PR_B_V)


def census_profiles() -> List[Tuple[FrozenSet[str], int]]:
    """The census as a deterministic (sorted) list of (profile, count)."""
    return sorted(
        HYBRID_CENSUS.items(), key=lambda kv: (-kv[1], tuple(sorted(kv[0])))
    )


def dominant_kind_weights(profile: FrozenSet[str]) -> Dict[str, float]:
    """Blend kind weights across the groups in a hybrid profile."""
    blended: Dict[str, float] = {}
    for group in profile:
        for kind, w in GROUP_STATS[group].kind_weights.items():
            blended[kind] = blended.get(kind, 0.0) + w
    return blended
