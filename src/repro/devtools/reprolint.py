"""reprolint: the determinism & purity auditor's driver and CLI.

Walks Python files, runs the :mod:`repro.devtools.rules` AST checks that
apply to each path, honours ``# reprolint: disable=`` escape hatches,
and renders findings as text or JSON.  Invoked as::

    PYTHONPATH=src python -m repro lint src/repro
    PYTHONPATH=src python -m repro lint --format json src/repro/datasets

Exit status: 0 clean, 1 findings, 2 usage/config errors or unparseable
source (the same contract ``repro audit`` follows).

Path scoping
------------
Rules are scoped per path prefix through ``[tool.reprolint]`` in
``pyproject.toml`` (mirrored by :data:`DEFAULT_CONFIG` so the tool works
without one).  A rule with no entry applies everywhere scanned.  The
repo's scoping encodes the architecture: REP001 covers the dataset /
measurement / inference layers where draws are lazy or lookup-ordered,
but not ``world/`` -- the world builder owns one serial RNG *by
contract* (single-threaded, fixed construction order) -- and not
``net/rng.py``, which implements the keyed helpers themselves.

Escape hatch
------------
``# reprolint: disable=REP001 -- justification`` on the finding's line
(or alone on the line above) suppresses that rule there.  The
justification is mandatory: a bare ``disable=`` suppresses nothing and
is itself reported as REP000, so every exception is a documented one.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.devtools.config import load_tool_section, parse_python, path_matches
from repro.devtools.report import render_json, render_text
from repro.devtools.rules import (
    Finding,
    RuleContext,
    RULES,
    all_rule_codes,
    run_rule,
)

__all__ = [
    "DEFAULT_CONFIG",
    "LintConfig",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "main",
]


@dataclass(frozen=True)
class LintConfig:
    """Which paths are scanned and which rules apply where.

    All path entries are prefixes relative to ``root`` (the directory of
    the ``pyproject.toml`` they came from, or the CWD for the builtin
    defaults).  An empty ``rule_paths`` entry for a code means the rule
    runs on every scanned file.
    """

    root: str = "."
    paths: Tuple[str, ...] = ("src/repro",)
    exclude: Tuple[str, ...] = ()
    rule_paths: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    rule_exclude: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    def codes_for(self, rel_path: str) -> Tuple[str, ...]:
        """The rule codes that apply to one file (repo-relative path)."""
        codes: List[str] = []
        for code in all_rule_codes():
            applies = self.rule_paths.get(code)
            if applies and not path_matches(rel_path, tuple(applies)):
                continue
            excluded = self.rule_exclude.get(code)
            if excluded and path_matches(rel_path, tuple(excluded)):
                continue
            codes.append(code)
        return tuple(codes)

    def is_excluded(self, rel_path: str) -> bool:
        return path_matches(rel_path, self.exclude)


#: The repo's scoping, mirrored from ``[tool.reprolint]`` in
#: ``pyproject.toml`` so the tool behaves identically without one.
DEFAULT_CONFIG = LintConfig(
    root=".",
    paths=("src/repro",),
    exclude=(),
    rule_paths={
        "REP001": (
            "src/repro/datasets",
            "src/repro/core",
            "src/repro/measure",
            "src/repro/analysis",
        ),
        "REP003": (
            "src/repro/core/config.py",
            "src/repro/measure/faults.py",
            "src/repro/datasets/datafaults.py",
        ),
        "REP004": ("src/repro/measure", "src/repro/core", "src/repro/obs"),
        "REP007": ("src/repro/measure", "src/repro/core"),
        "REP008": (
            "src/repro/measure/health.py",
            "src/repro/measure/adapt.py",
        ),
    },
    rule_exclude={
        "REP001": ("src/repro/net/rng.py",),
    },
)


def load_config(pyproject_path: Optional[str] = None) -> LintConfig:
    """Read ``[tool.reprolint]`` from a pyproject, or fall back to defaults.

    On Python < 3.11 (no ``tomllib``) the builtin :data:`DEFAULT_CONFIG`
    is used; the two are kept in sync by ``tests/test_reprolint.py``.
    """
    section, root = load_tool_section("reprolint", pyproject_path)
    if section is None:
        return DEFAULT_CONFIG
    return LintConfig(
        root=root,
        paths=tuple(section.get("paths", DEFAULT_CONFIG.paths)),
        exclude=tuple(section.get("exclude", ())),
        rule_paths={
            code: tuple(paths)
            for code, paths in section.get("rule_paths", {}).items()
        },
        rule_exclude={
            code: tuple(paths)
            for code, paths in section.get("rule_exclude", {}).items()
        },
    )


# ----------------------------------------------------------------------
# disable comments
# ----------------------------------------------------------------------

_DISABLE_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>[A-Z0-9,\s]+?)"
    r"(?:\s+--\s*(?P<why>\S.*))?\s*$"
)


@dataclass(frozen=True)
class _Disable:
    line: int
    codes: Tuple[str, ...]
    justified: bool
    standalone: bool  # the line holds only the comment


def _scan_disables(source_lines: Sequence[str]) -> List[_Disable]:
    disables: List[_Disable] = []
    for lineno, text in enumerate(source_lines, start=1):
        match = _DISABLE_RE.search(text)
        if match is None:
            continue
        codes = tuple(
            c.strip() for c in match.group("codes").split(",") if c.strip()
        )
        disables.append(
            _Disable(
                line=lineno,
                codes=codes,
                justified=match.group("why") is not None,
                standalone=text.lstrip().startswith("#"),
            )
        )
    return disables


def _apply_disables(
    findings: Sequence[Finding],
    disables: Sequence[_Disable],
    path: str,
) -> List[Finding]:
    """Suppress justified disables; report unjustified ones as REP000."""
    suppressing: Dict[int, Set[str]] = {}
    out: List[Finding] = []
    for d in disables:
        if not d.justified:
            out.append(
                Finding(
                    code="REP000",
                    path=path,
                    line=d.line,
                    col=0,
                    message=(
                        "disable comment without a justification: write "
                        "`# reprolint: disable="
                        + ",".join(d.codes)
                        + " -- <why this exception is sound>` (an "
                        "unjustified disable suppresses nothing)"
                    ),
                    fix_hint="append ` -- <justification>` or fix the "
                    "underlying finding",
                )
            )
            continue
        suppressing.setdefault(d.line, set()).update(d.codes)
        if d.standalone:
            # A comment alone on a line covers the next line.
            suppressing.setdefault(d.line + 1, set()).update(d.codes)
    for f in findings:
        if f.code in suppressing.get(f.line, ()):
            continue
        out.append(f)
    return out


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<string>",
    codes: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one source string with the given rules (default: all)."""
    tree, parse_error = parse_python(source, path, "REP000")
    if tree is None:
        return [parse_error] if parse_error is not None else []
    source_lines = tuple(source.splitlines())
    ctx = RuleContext(path=path, tree=tree, source_lines=source_lines)
    findings: List[Finding] = []
    for code in codes if codes is not None else all_rule_codes():
        findings.extend(run_rule(code, ctx))
    return _apply_disables(findings, _scan_disables(source_lines), path)


def lint_file(
    abs_path: str, rel_path: str, config: LintConfig
) -> List[Finding]:
    """Lint one file under the config's rule scoping."""
    codes = config.codes_for(rel_path)
    if not codes:
        return []
    with open(abs_path, encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, path=rel_path, codes=codes)


def _walk_python_files(
    paths: Sequence[str], config: LintConfig
) -> List[Tuple[str, str]]:
    """(absolute, repo-relative) pairs, sorted for stable output."""
    found: Dict[str, str] = {}
    for entry in paths:
        abs_entry = (
            entry
            if os.path.isabs(entry)
            else os.path.join(config.root, entry)
        )
        if os.path.isfile(abs_entry):
            rel = os.path.relpath(abs_entry, config.root)
            found[os.path.abspath(abs_entry)] = rel
            continue
        for dirpath, dirnames, filenames in os.walk(abs_entry):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                abs_path = os.path.join(dirpath, name)
                rel = os.path.relpath(abs_path, config.root)
                found[os.path.abspath(abs_path)] = rel
    return sorted(
        (
            (abs_path, rel)
            for abs_path, rel in found.items()
            if not config.is_excluded(rel)
        ),
        key=lambda pair: pair[1],
    )


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """Lint files/directories; returns (findings, files_checked)."""
    config = config or DEFAULT_CONFIG
    files = _walk_python_files(paths or config.paths, config)
    findings: List[Finding] = []
    for abs_path, rel_path in files:
        codes = config.codes_for(rel_path)
        if rules is not None:
            codes = tuple(c for c in codes if c in rules)
        if not codes:
            continue
        with open(abs_path, encoding="utf-8") as fh:
            source = fh.read()
        findings.extend(lint_source(source, path=rel_path, codes=codes))
    return findings, len(files)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based determinism & purity auditor for the repro tree "
            "(rules REP001..REP008; see DESIGN.md 'Determinism contract')"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.reprolint] "
        "paths, i.e. src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--rules",
        type=str,
        default=None,
        metavar="CODES",
        help="comma-separated subset of rules to run, e.g. REP001,REP005",
    )
    parser.add_argument(
        "--config",
        type=str,
        default=None,
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.reprolint] from "
        "(default: ./pyproject.toml if present)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for code in all_rule_codes():
            spec = RULES[code]
            print(f"{code}  {spec.title}")
            print(f"        why: {spec.rationale}")
            print(f"        fix: {spec.fix_hint}")
        return 0
    rules: Optional[Tuple[str, ...]] = None
    if args.rules:
        rules = tuple(code.strip() for code in args.rules.split(",") if code.strip())
        unknown = [code for code in rules if code not in RULES]
        if unknown:
            print(
                f"repro lint: unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(all_rule_codes())})",
                file=sys.stderr,
            )
            return 2
    try:
        config = load_config(args.config)
    except OSError as exc:
        print(f"repro lint: cannot read config: {exc}", file=sys.stderr)
        return 2
    findings, files_checked = lint_paths(
        args.paths or None, config=config, rules=rules
    )
    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings, files_checked=files_checked))
    if any(f.fatal for f in findings):
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
