"""Shared ``pyproject.toml`` plumbing for the devtools auditors.

``repro lint`` (:mod:`repro.devtools.reprolint`) and ``repro audit``
(:mod:`repro.devtools.audit`) are both configured through ``[tool.*]``
sections of the repo's ``pyproject.toml``, and both scope their checks
by repo-relative path prefixes.  This module owns that plumbing once, so
the two tools can never drift apart on how a section is located, how
missing ``tomllib`` is handled, or what "path ``a/b`` is under prefix
``a``" means:

* :func:`load_tool_section` -- find and parse one ``[tool.<name>]``
  table (returns the section, or ``None`` when the file or section is
  absent, plus the root directory config paths are relative to);
* :func:`path_matches` -- the single prefix-matching predicate both
  tools use for ``paths`` / ``exclude`` / per-rule scoping entries;
* :func:`parse_python` -- ``ast.parse`` with the shared failure
  contract: an unparseable file (syntax error *or* a ``ValueError``
  such as a NUL byte in the source) is reported as a *fatal*
  :class:`~repro.devtools.rules.Finding`, never a traceback, and both
  CLIs turn any fatal finding into exit status 2.
"""

from __future__ import annotations

import ast
import os
from typing import Any, Mapping, Optional, Tuple

from repro.devtools.rules import Finding

__all__ = [
    "load_tool_section",
    "parse_python",
    "path_matches",
]


def load_tool_section(
    tool: str, pyproject_path: Optional[str] = None
) -> Tuple[Optional[Mapping[str, Any]], str]:
    """Locate and parse ``[tool.<tool>]`` from a ``pyproject.toml``.

    With ``pyproject_path=None`` the CWD's ``pyproject.toml`` is tried.
    Returns ``(section, root)`` where ``root`` is the directory all of
    the section's relative paths are resolved against.  ``section`` is
    ``None`` when the file does not exist, the section is absent, or the
    interpreter predates ``tomllib`` (Python < 3.11) -- callers fall
    back to their builtin mirror of the committed config in every one of
    those cases, which the config-sync tests keep honest.

    ``OSError`` from an explicitly-named unreadable file propagates (the
    CLIs report it as a usage error, exit 2).
    """
    if pyproject_path is None:
        candidate = os.path.join(os.getcwd(), "pyproject.toml")
        if not os.path.isfile(candidate):
            return None, os.getcwd()
        pyproject_path = candidate
    root = os.path.dirname(os.path.abspath(pyproject_path))
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        return None, root
    with open(pyproject_path, "rb") as fh:
        data = tomllib.load(fh)
    section = data.get("tool", {}).get(tool)
    if not isinstance(section, Mapping):
        return None, root
    return section, root


def path_matches(rel_path: str, prefixes: Tuple[str, ...]) -> bool:
    """Is ``rel_path`` equal to, or nested under, any prefix?

    Both tools store config entries as repo-relative, ``/``-separated
    prefixes; ``rel_path`` may arrive with OS separators.
    """
    norm = rel_path.replace(os.sep, "/")
    for prefix in prefixes:
        p = prefix.rstrip("/")
        if norm == p or norm.startswith(p + "/"):
            return True
    return False


def parse_python(
    source: str, path: str, code: str
) -> Tuple[Optional[ast.Module], Optional[Finding]]:
    """Parse one source file under the shared failure contract.

    Returns ``(tree, None)`` on success and ``(None, finding)`` on any
    parse failure, where the finding carries ``fatal=True``: the file
    cannot be audited at all, so the run's exit status must be 2 (a
    broken input, distinct from exit 1's "checks ran and found
    violations").  ``ValueError`` covers non-syntax rejections such as
    NUL bytes, which ``ast.parse`` raises outside ``SyntaxError``.
    """
    try:
        return ast.parse(source, filename=path), None
    except SyntaxError as exc:
        return None, Finding(
            code=code,
            path=path,
            line=exc.lineno or 1,
            col=exc.offset or 0,
            message=f"file does not parse: {exc.msg}",
            fix_hint="fix the syntax error; AST-based checks need a "
            "valid parse",
            fatal=True,
        )
    except ValueError as exc:
        return None, Finding(
            code=code,
            path=path,
            line=1,
            col=0,
            message=f"file does not parse: {exc}",
            fix_hint="the source is not valid Python text (e.g. embedded "
            "NUL bytes); repair or exclude the file",
            fatal=True,
        )
