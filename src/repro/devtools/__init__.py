"""Developer tooling that enforces the repo's determinism contract.

The load-bearing guarantee of this codebase is bit-for-bit
reproducibility: the golden study digest must be identical across worker
counts, fault plans, and dataset lookup orders.  The invariants that make
that true (keyed RNG draws, frozen configs, sorted iteration on digest
paths) used to be enforced by convention only; :mod:`repro.devtools`
turns them into a mechanical check.

* :mod:`repro.devtools.rules` -- the REP001..REP006 AST rules.
* :mod:`repro.devtools.reprolint` -- config loading, file walking,
  disable-comment handling, and the ``repro lint`` CLI.
* :mod:`repro.devtools.report` -- human and machine-readable renderers.
"""

from repro.devtools.reprolint import LintConfig, lint_paths, lint_source
from repro.devtools.rules import Finding, RULES, RuleSpec

__all__ = [
    "Finding",
    "LintConfig",
    "RULES",
    "RuleSpec",
    "lint_paths",
    "lint_source",
]
