"""The ``repro audit`` CLI: config, pass orchestration, and reporting.

Follows reprolint's driver pattern exactly -- a frozen config mirrored
from ``pyproject.toml`` (``[tool.reproaudit]``), text/JSON renderers
shared via :mod:`repro.devtools.report`, and the exit-code contract
0 clean / 1 findings / 2 usage, config, or parse errors::

    PYTHONPATH=src python -m repro audit
    PYTHONPATH=src python -m repro audit --format json
    PYTHONPATH=src python -m repro audit --update-locks
    PYTHONPATH=src python -m repro audit --with-lint   # + reprolint findings

``--update-locks`` rewrites ``schemas.lock.json`` / ``api.lock.json``
to match the live tree, which is the one sanctioned way to change a
serialized surface or a public API: the lockfile diff then sits in the
same review as the code change.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.devtools.audit.apilock import extract_api
from repro.devtools.audit.importgraph import build_graph, check_layering
from repro.devtools.audit.schemalock import (
    canonical_json,
    diff_locked,
    extract_schemas,
)
from repro.devtools.config import load_tool_section
from repro.devtools.report import render_json, render_text
from repro.devtools.rules import RULES, Finding, RuleSpec

__all__ = [
    "AUDIT_RULES",
    "AuditConfig",
    "DEFAULT_AUDIT_CONFIG",
    "load_audit_config",
    "main",
    "run_audit",
]


def _spec(code: str, title: str, rationale: str, fix_hint: str) -> RuleSpec:
    # Audit findings come from whole-program passes, not per-file
    # checkers, so the RuleSpec carries identity only.
    return RuleSpec(
        code=code,
        title=title,
        rationale=rationale,
        fix_hint=fix_hint,
        check=lambda ctx: [],
    )


AUDIT_RULES: Mapping[str, RuleSpec] = {
    spec.code: spec
    for spec in (
        _spec(
            "AUD000",
            "unjustified allow-edge comment",
            "an escape hatch without a recorded reason is an undocumented "
            "architecture exception",
            "append ` -- <justification>` or remove the import",
        ),
        _spec(
            "AUD001",
            "unparseable source file",
            "a file the auditor cannot parse is a file no contract covers",
            "fix the syntax error; AST-based checks need a valid parse",
        ),
        _spec(
            "ARC001",
            "runtime import cycle",
            "cycles make import order load-bearing and undermine the "
            "layering the inference chain depends on",
            "break the cycle with a TYPE_CHECKING or function-level import",
        ),
        _spec(
            "ARC002",
            "forbidden cross-layer import",
            "an edge outside the declared may_import lists couples layers "
            "the architecture keeps apart",
            "move the shared code down a layer or invert the dependency",
        ),
        _spec(
            "ARC003",
            "layer-skipping import",
            "the dependency exists but bypasses the declared seam, hiding "
            "it from the layer in between",
            "route through the intermediate layer or declare the direct "
            "edge in may_import",
        ),
        _spec(
            "ARC004",
            "module assigned to no layer",
            "an unassigned module is exempt from the whole contract",
            "add its package to a layer in [tool.reproaudit.layers]",
        ),
        _spec(
            "SCH001",
            "schema lockfile missing",
            "without schemas.lock.json no serialized surface is pinned",
            "run `repro audit --update-locks` and commit the lockfile",
        ),
        _spec(
            "SCH002",
            "serialized schema drifted from lockfile",
            "checkpoints, shard wire tuples, bench reports, and span rows "
            "outlive the process that wrote them; silent drift breaks "
            "resume and regression gating",
            "if intended, run `repro audit --update-locks` and commit the "
            "lockfile diff alongside the change",
        ),
        _spec(
            "SCH003",
            "schema surface not statically extractable",
            "a surface the auditor cannot see is a surface it cannot pin",
            "keep the serialization sites in their documented shapes",
        ),
        _spec(
            "API001",
            "API lockfile missing",
            "without api.lock.json the public surface is unpinned",
            "run `repro audit --update-locks` and commit the lockfile",
        ),
        _spec(
            "API002",
            "public API drifted from lockfile",
            "renamed or removed public names break downstream callers "
            "without a visible diff",
            "if intended, run `repro audit --update-locks` and commit the "
            "lockfile diff alongside the change",
        ),
    )
}


@dataclass(frozen=True)
class AuditConfig:
    """The whole-program contract, mirrored from ``[tool.reproaudit]``."""

    root: str = "."
    package_root: str = "src/repro"
    schema_lock: str = "schemas.lock.json"
    api_lock: str = "api.lock.json"
    api_packages: Tuple[str, ...] = (
        "bench",
        "core",
        "datasets",
        "measure",
        "obs",
    )
    layer_modules: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    may_import: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)


#: The repo's layering, mirrored from ``pyproject.toml`` so the tool
#: behaves identically without one (kept in sync by tests/test_audit.py).
#: ``util`` (errors.py, fsutil.py) sits under everything; ``obs`` is
#: instrumentation importable from the measurement plane up; ``app``
#: (cli, package root) may import anything; ``devtools`` sees only
#: ``util`` -- the auditors never couple to the runtime they audit.
_DEFAULT_LAYERS: Mapping[str, Mapping[str, Tuple[str, ...]]] = {
    "util": {
        "modules": ("repro.errors", "repro.fsutil"),
        "may_import": (),
    },
    "net": {"modules": ("repro.net",), "may_import": ("util",)},
    "obs": {"modules": ("repro.obs",), "may_import": ("util",)},
    "world": {"modules": ("repro.world",), "may_import": ("net", "util")},
    "datasets": {
        "modules": ("repro.datasets",),
        "may_import": ("world", "net", "util"),
    },
    "measure": {
        "modules": ("repro.measure",),
        "may_import": ("datasets", "world", "net", "obs", "util"),
    },
    "core": {
        "modules": ("repro.core",),
        "may_import": ("measure", "datasets", "world", "net", "obs", "util"),
    },
    "analysis": {
        "modules": ("repro.analysis",),
        "may_import": ("core", "datasets", "world", "net", "util"),
    },
    "bdrmap": {
        "modules": ("repro.bdrmap",),
        "may_import": ("core", "measure", "datasets", "world", "net", "util"),
    },
    "bench": {
        "modules": ("repro.bench",),
        "may_import": (
            "core",
            "measure",
            "datasets",
            "world",
            "net",
            "obs",
            "util",
        ),
    },
    "devtools": {"modules": ("repro.devtools",), "may_import": ("util",)},
    "app": {
        "modules": ("repro",),
        "may_import": (
            "analysis",
            "bdrmap",
            "bench",
            "core",
            "datasets",
            "devtools",
            "measure",
            "net",
            "obs",
            "world",
            "util",
        ),
    },
}

DEFAULT_AUDIT_CONFIG = AuditConfig(
    layer_modules={
        name: tuple(spec["modules"]) for name, spec in _DEFAULT_LAYERS.items()
    },
    may_import={
        name: tuple(spec["may_import"])
        for name, spec in _DEFAULT_LAYERS.items()
    },
)


def load_audit_config(pyproject_path: Optional[str] = None) -> AuditConfig:
    """Read ``[tool.reproaudit]``, or fall back to the builtin mirror."""
    section, root = load_tool_section("reproaudit", pyproject_path)
    if section is None:
        return DEFAULT_AUDIT_CONFIG
    layers = section.get("layers", {})
    return AuditConfig(
        root=root,
        package_root=str(
            section.get("package_root", DEFAULT_AUDIT_CONFIG.package_root)
        ),
        schema_lock=str(
            section.get("schema_lock", DEFAULT_AUDIT_CONFIG.schema_lock)
        ),
        api_lock=str(section.get("api_lock", DEFAULT_AUDIT_CONFIG.api_lock)),
        api_packages=tuple(
            section.get("api_packages", DEFAULT_AUDIT_CONFIG.api_packages)
        ),
        layer_modules={
            name: tuple(spec.get("modules", ()))
            for name, spec in layers.items()
        },
        may_import={
            name: tuple(spec.get("may_import", ()))
            for name, spec in layers.items()
        },
    )


# ----------------------------------------------------------------------
# pass orchestration
# ----------------------------------------------------------------------


def _load_lock(path: str) -> Optional[Any]:
    if not os.path.isfile(path):
        return None
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _schema_surface_paths(package_root: str) -> Dict[str, str]:
    return {
        "stage_store": f"{package_root}/core/stages.py",
        "campaign_checkpoint": f"{package_root}/measure/checkpoint.py",
        "shard_wire": f"{package_root}/measure/executor.py",
        "bench_report": f"{package_root}/bench/report.py",
        "span_record": f"{package_root}/obs/span.py",
    }


def run_audit(
    config: Optional[AuditConfig] = None,
    *,
    update_locks: bool = False,
) -> Tuple[List[Finding], int]:
    """Run all three passes; returns (findings, modules_checked).

    With ``update_locks=True`` both lockfiles are rewritten from the
    live tree instead of being diffed against it (layering findings are
    still reported -- a lock update must not launder a forbidden edge).
    """
    config = config or DEFAULT_AUDIT_CONFIG
    findings: List[Finding] = []

    graph = build_graph(config.root, config.package_root)
    findings.extend(
        check_layering(graph, config.layer_modules, config.may_import)
    )

    live_schemas, schema_findings = extract_schemas(
        config.root, config.package_root
    )
    findings.extend(schema_findings)
    live_api, api_findings = extract_api(
        config.root, config.package_root, config.api_packages
    )
    findings.extend(api_findings)

    schema_lock_path = os.path.join(config.root, config.schema_lock)
    api_lock_path = os.path.join(config.root, config.api_lock)
    if update_locks:
        with open(schema_lock_path, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(live_schemas))
        with open(api_lock_path, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(live_api))
    else:
        locked_schemas = _load_lock(schema_lock_path)
        if locked_schemas is None:
            findings.append(
                Finding(
                    code="SCH001",
                    path=config.schema_lock,
                    line=1,
                    col=0,
                    message="schema lockfile missing or unreadable",
                    fix_hint="run `repro audit --update-locks` and commit "
                    "the lockfile",
                )
            )
        else:
            findings.extend(
                diff_locked(
                    locked_schemas,
                    live_schemas,
                    config.schema_lock,
                    code="SCH002",
                    surface_paths=_schema_surface_paths(config.package_root),
                    update_hint="if this change is intended, run `repro "
                    "audit --update-locks` and commit the lockfile diff",
                )
            )
        locked_api = _load_lock(api_lock_path)
        if locked_api is None:
            findings.append(
                Finding(
                    code="API001",
                    path=config.api_lock,
                    line=1,
                    col=0,
                    message="API lockfile missing or unreadable",
                    fix_hint="run `repro audit --update-locks` and commit "
                    "the lockfile",
                )
            )
        else:
            findings.extend(
                diff_locked(
                    locked_api,
                    live_api,
                    config.api_lock,
                    code="API002",
                    surface_paths={
                        pkg: f"{config.package_root}/{pkg}/__init__.py"
                        for pkg in config.api_packages
                    },
                    update_hint="if this change is intended, run `repro "
                    "audit --update-locks` and commit the lockfile diff",
                )
            )
    return findings, len(graph.modules)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro audit",
        description=(
            "Whole-program auditor: import-graph layering, serialized-"
            "schema lockfile, and public-API lockfile (see DESIGN.md "
            "'Architecture & schema contracts')"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--config",
        type=str,
        default=None,
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.reproaudit] from "
        "(default: ./pyproject.toml if present)",
    )
    parser.add_argument(
        "--update-locks",
        action="store_true",
        help="rewrite schemas.lock.json and api.lock.json from the live "
        "tree instead of diffing against them",
    )
    parser.add_argument(
        "--with-lint",
        action="store_true",
        help="also run repro lint and fold its findings into one report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the finding catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for code in sorted(AUDIT_RULES):
            spec = AUDIT_RULES[code]
            print(f"{code}  {spec.title}")
            print(f"        why: {spec.rationale}")
            print(f"        fix: {spec.fix_hint}")
        return 0
    try:
        config = load_audit_config(args.config)
    except OSError as exc:
        print(f"repro audit: cannot read config: {exc}", file=sys.stderr)
        return 2
    findings, files_checked = run_audit(
        config, update_locks=args.update_locks
    )
    catalog: Dict[str, RuleSpec] = dict(AUDIT_RULES)
    if args.with_lint:
        from repro.devtools.reprolint import lint_paths, load_config

        try:
            lint_config = load_config(args.config)
        except OSError as exc:
            print(f"repro audit: cannot read config: {exc}", file=sys.stderr)
            return 2
        lint_findings, lint_files = lint_paths(config=lint_config)
        findings.extend(lint_findings)
        files_checked = max(files_checked, lint_files)
        catalog.update(RULES)
    if args.format == "json":
        print(
            render_json(
                findings,
                files_checked=files_checked,
                tool="reproaudit",
                catalog=catalog,
            )
        )
    else:
        print(
            render_text(
                findings, files_checked=files_checked, tool="reproaudit"
            )
        )
    if any(f.fatal for f in findings):
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
