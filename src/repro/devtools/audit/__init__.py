"""repro audit: the whole-program architecture & contract auditor.

``reprolint`` (:mod:`repro.devtools.reprolint`) audits determinism
*within* a file; this package audits the *whole program*, in three
passes over the same parsed tree:

* :mod:`~repro.devtools.audit.importgraph` -- the intra-package import
  DAG against the declared layering in ``[tool.reproaudit]`` (cycles,
  forbidden edges, layer-skipping imports, with a
  ``# reproaudit: allow-edge -- justification`` escape hatch);
* :mod:`~repro.devtools.audit.schemalock` -- every serialized surface
  (StageStore codec, checkpoint journal, shard wire tuple, bench
  report, span records) against the committed ``schemas.lock.json``;
* :mod:`~repro.devtools.audit.apilock` -- the public API of the runtime
  packages against the committed ``api.lock.json``.

:mod:`~repro.devtools.audit.driver` wires them behind ``repro audit``
with the same exit-code contract as ``repro lint`` (0 clean, 1
findings, 2 usage/config errors or unparseable source).
"""

from repro.devtools.audit.driver import (
    AUDIT_RULES,
    AuditConfig,
    DEFAULT_AUDIT_CONFIG,
    load_audit_config,
    main,
    run_audit,
)

__all__ = [
    "AUDIT_RULES",
    "AuditConfig",
    "DEFAULT_AUDIT_CONFIG",
    "load_audit_config",
    "main",
    "run_audit",
]
