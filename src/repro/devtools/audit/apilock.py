"""Pass 3: the public API surface against the committed ``api.lock.json``.

For each audited package (``core``, ``measure``, ``datasets``,
``bench``, ``obs`` by default) the surface is

* the package ``__init__``'s ``__all__`` (what ``from repro.measure
  import *`` means -- the curated re-export list downstream code and
  the tests lean on), and
* every non-underscore module-level ``def``/``class`` of each module
  (what a reader can reach by full path).

Like the schema lock, extraction is purely syntactic; renaming,
removing, or adding a public name without ``repro audit
--update-locks`` is a finding, so API changes are always deliberate and
visible in the diff of ``api.lock.json``.
"""

from __future__ import annotations

import ast
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.devtools.config import parse_python
from repro.devtools.rules import Finding

__all__ = ["API_LOCK_VERSION", "extract_api"]

API_LOCK_VERSION = 1


def _module_all(tree: ast.Module) -> Optional[List[str]]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__"
            for t in node.targets
        ):
            try:
                value = ast.literal_eval(node.value)
            except ValueError:
                return None
            return sorted(str(name) for name in value)
    return None


def _public_defs(tree: ast.Module) -> List[str]:
    names: List[str] = []
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and not node.name.startswith("_"):
            names.append(node.name)
    return sorted(names)


def extract_api(
    root: str,
    package_root: str = "src/repro",
    packages: Tuple[str, ...] = ("bench", "core", "datasets", "measure", "obs"),
) -> Tuple[Dict[str, Any], List[Finding]]:
    """The public surface of each audited package, plus findings."""
    findings: List[Finding] = []
    surface: Dict[str, Any] = {"version": API_LOCK_VERSION}
    for package in sorted(packages):
        pkg_dir = os.path.join(root, package_root, package)
        entry: Dict[str, Any] = {"all": None, "modules": {}}
        try:
            listing = sorted(os.listdir(pkg_dir))
        except OSError as exc:
            findings.append(
                Finding(
                    code="API002",
                    path=f"{package_root}/{package}",
                    line=1,
                    col=0,
                    message=f"audited package unreadable: {exc}",
                    fix_hint="restore the package or update "
                    "[tool.reproaudit]'s api_packages",
                )
            )
            surface[package] = entry
            continue
        for name in listing:
            if not name.endswith(".py"):
                continue
            rel = f"{package_root}/{package}/{name}"
            with open(os.path.join(root, rel), encoding="utf-8") as fh:
                source = fh.read()
            tree, failure = parse_python(source, rel, "AUD001")
            if tree is None:
                if failure is not None:
                    findings.append(failure)
                continue
            if name == "__init__.py":
                entry["all"] = _module_all(tree)
                continue
            public = _public_defs(tree)
            if public:
                entry["modules"][name[: -len(".py")]] = public
        surface[package] = entry
    return surface, findings
