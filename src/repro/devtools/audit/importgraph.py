"""Pass 1: the intra-package import graph against the declared layering.

Every module under the package root is parsed (``ast`` only -- nothing
is imported), every ``import``/``from ... import`` of an intra-package
module becomes an edge, and each edge carries its *kind*:

* ``runtime`` -- module level, executed at import time;
* ``type`` -- inside an ``if TYPE_CHECKING:`` block, never executed;
* ``lazy`` -- inside a function body, executed on call.

Cycles are computed over runtime edges only (type/lazy edges are how
cycles are legitimately broken); the layering contract applies to every
kind, because even a type-only import couples the layers for readers
and refactors.

Layering
--------
``[tool.reproaudit.layers]`` assigns module prefixes to named layers
and gives each layer an explicit ``may_import`` list.  An edge from
layer A to layer B is

* fine when A == B or B is in A's ``may_import``;
* **layer-skipping** (ARC003) when B is reachable from A only through
  the transitive closure of ``may_import`` -- the dependency exists but
  bypasses the declared seam;
* **forbidden** (ARC002) otherwise.

``# reproaudit: allow-edge -- justification`` on the import's line (or
alone on the line above) suppresses ARC002/ARC003 for that edge; the
justification is mandatory, and a bare ``allow-edge`` is itself
reported as AUD000, mirroring reprolint's disable grammar.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.devtools.config import parse_python
from repro.devtools.rules import Finding

__all__ = [
    "ImportEdge",
    "ModuleGraph",
    "build_graph",
    "check_layering",
    "find_cycles",
]


@dataclass(frozen=True)
class ImportEdge:
    """One intra-package import: ``src`` module imports ``dst`` module."""

    src: str
    dst: str
    path: str  # repo-relative path of the importing file
    line: int
    col: int
    kind: str  # "runtime" | "type" | "lazy"


@dataclass(frozen=True)
class ModuleGraph:
    """The parsed package: modules, edges, and parse failures."""

    modules: Tuple[str, ...]
    edges: Tuple[ImportEdge, ...]
    #: repo-relative path of each module, for reporting.
    paths: Mapping[str, str]
    #: raw source lines per module, for the allow-edge scan.
    sources: Mapping[str, Tuple[str, ...]]
    parse_failures: Tuple[Finding, ...]

    def runtime_edges(self) -> List[ImportEdge]:
        return [e for e in self.edges if e.kind == "runtime"]


def _module_name(rel_path: str, src_prefix: str) -> str:
    """``src/repro/net/asn.py`` -> ``repro.net.asn``."""
    rel = rel_path.replace(os.sep, "/")
    if rel.startswith(src_prefix + "/"):
        rel = rel[len(src_prefix) + 1 :]
    mod = rel[: -len(".py")].replace("/", ".")
    if mod.endswith(".__init__"):
        mod = mod[: -len(".__init__")]
    return mod


class _ImportVisitor(ast.NodeVisitor):
    """Collect intra-package imports with their nesting kind."""

    def __init__(self, src_mod: str, path: str, known: Set[str]) -> None:
        self.src_mod = src_mod
        self.path = path
        self.known = known
        self.edges: List[ImportEdge] = []
        self._stack: List[Optional[str]] = []

    def _kind(self) -> str:
        for kind in reversed(self._stack):
            if kind is not None:
                return kind
        return "runtime"

    def visit_If(self, node: ast.If) -> None:
        test = ast.dump(node.test)
        kind = "type" if "TYPE_CHECKING" in test else None
        self._stack.append(kind)
        self.generic_visit(node)
        self._stack.pop()

    def _visit_function(self, node: ast.AST) -> None:
        self._stack.append("lazy")
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _add(self, target: str, node: ast.AST) -> None:
        dst = self._resolve(target)
        if dst is None or dst == self.src_mod:
            return
        self.edges.append(
            ImportEdge(
                src=self.src_mod,
                dst=dst,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                kind=self._kind(),
            )
        )

    def _resolve(self, target: str) -> Optional[str]:
        """Longest known module prefix of ``target`` (or None if foreign)."""
        parts = target.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.known:
                return candidate
        return None

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add(alias.name, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:  # relative import; repo style is absolute-only
            base_parts = self.src_mod.split(".")[: -node.level or None]
            module = ".".join(
                base_parts + ([node.module] if node.module else [])
            )
        else:
            module = node.module or ""
        if not module:
            return
        for alias in node.names:
            # `from pkg import name` targets the submodule pkg.name when
            # one exists, the package itself otherwise.
            dotted = f"{module}.{alias.name}"
            self._add(dotted if dotted in self.known else module, node)


def build_graph(
    root: str, package_root: str = "src/repro"
) -> ModuleGraph:
    """Parse every module under ``root/package_root`` into a graph."""
    src_prefix = package_root.split("/")[0]
    abs_pkg = os.path.join(root, package_root)
    rel_paths: List[str] = []
    for dirpath, dirnames, filenames in os.walk(abs_pkg):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in sorted(filenames):
            if name.endswith(".py"):
                rel_paths.append(
                    os.path.relpath(os.path.join(dirpath, name), root)
                )
    rel_paths.sort()
    known: Set[str] = set()
    paths: Dict[str, str] = {}
    for rel in rel_paths:
        mod = _module_name(rel, src_prefix)
        known.add(mod)
        paths[mod] = rel.replace(os.sep, "/")
    edges: List[ImportEdge] = []
    sources: Dict[str, Tuple[str, ...]] = {}
    failures: List[Finding] = []
    for rel in rel_paths:
        mod = _module_name(rel, src_prefix)
        with open(os.path.join(root, rel), encoding="utf-8") as fh:
            source = fh.read()
        tree, failure = parse_python(source, paths[mod], "AUD001")
        if tree is None:
            if failure is not None:
                failures.append(failure)
            continue
        sources[mod] = tuple(source.splitlines())
        visitor = _ImportVisitor(mod, paths[mod], known)
        visitor.visit(tree)
        edges.extend(visitor.edges)
    return ModuleGraph(
        modules=tuple(sorted(known)),
        edges=tuple(edges),
        paths=paths,
        sources=sources,
        parse_failures=tuple(failures),
    )


# ----------------------------------------------------------------------
# cycles
# ----------------------------------------------------------------------


def find_cycles(graph: ModuleGraph) -> List[Tuple[str, ...]]:
    """Cycles among runtime edges (Tarjan SCCs of size > 1), sorted."""
    adjacency: Dict[str, Set[str]] = {m: set() for m in graph.modules}
    for edge in graph.runtime_edges():
        adjacency[edge.src].add(edge.dst)
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Tuple[str, ...]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: (node, iterator) pairs to survive deep graphs.
        work = [(v, iter(sorted(adjacency[v])))]
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adjacency[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                if len(component) > 1:
                    # Rotate so the cycle starts at its smallest member.
                    pivot = component.index(min(component))
                    rotated = tuple(
                        component[pivot:] + component[:pivot]
                    )
                    sccs.append(rotated)

    for module in graph.modules:
        if module not in index:
            strongconnect(module)
    return sorted(sccs)


# ----------------------------------------------------------------------
# layering
# ----------------------------------------------------------------------

_ALLOW_RE = re.compile(
    r"#\s*reproaudit:\s*allow-edge(?:\s+--\s*(?P<why>\S.*))?\s*$"
)


@dataclass(frozen=True)
class _Allow:
    line: int
    justified: bool
    standalone: bool


def _scan_allows(source_lines: Sequence[str]) -> List[_Allow]:
    allows: List[_Allow] = []
    for lineno, text in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        allows.append(
            _Allow(
                line=lineno,
                justified=match.group("why") is not None,
                standalone=text.lstrip().startswith("#"),
            )
        )
    return allows


def _closure(
    may_import: Mapping[str, Tuple[str, ...]]
) -> Dict[str, Set[str]]:
    """Transitive closure of the may_import relation, per layer."""
    closure: Dict[str, Set[str]] = {}

    def reach(layer: str, seen: Set[str]) -> Set[str]:
        if layer in closure:
            return closure[layer]
        if layer in seen:  # defensive: a cyclic layer declaration
            return set()
        seen.add(layer)
        out: Set[str] = set()
        for dep in may_import.get(layer, ()):
            out.add(dep)
            out |= reach(dep, seen)
        closure[layer] = out
        return out

    for layer in may_import:
        reach(layer, set())
    return closure


def layer_of(
    module: str, layer_modules: Mapping[str, Tuple[str, ...]]
) -> Optional[str]:
    """The layer whose longest module prefix covers ``module``."""
    best: Optional[Tuple[int, str]] = None
    for layer, prefixes in layer_modules.items():
        for prefix in prefixes:
            if module == prefix or module.startswith(prefix + "."):
                if best is None or len(prefix) > best[0]:
                    best = (len(prefix), layer)
    return best[1] if best is not None else None


def check_layering(
    graph: ModuleGraph,
    layer_modules: Mapping[str, Tuple[str, ...]],
    may_import: Mapping[str, Tuple[str, ...]],
) -> List[Finding]:
    """ARC001 cycles, ARC002/ARC003 bad edges, ARC004 unassigned, AUD000."""
    findings: List[Finding] = list(graph.parse_failures)
    for cycle in find_cycles(graph):
        head = cycle[0]
        findings.append(
            Finding(
                code="ARC001",
                path=graph.paths.get(head, head),
                line=1,
                col=0,
                message=(
                    "runtime import cycle: " + " -> ".join(cycle + (head,))
                ),
                fix_hint="break the cycle with a TYPE_CHECKING or "
                "function-level import, or move the shared piece down a "
                "layer",
            )
        )
    closure = _closure(may_import)
    assignments = {m: layer_of(m, layer_modules) for m in graph.modules}
    for module, layer in sorted(assignments.items()):
        if layer is None:
            findings.append(
                Finding(
                    code="ARC004",
                    path=graph.paths.get(module, module),
                    line=1,
                    col=0,
                    message=f"module {module} belongs to no declared "
                    "layer",
                    fix_hint="add its package (or the module itself) to a "
                    "layer in [tool.reproaudit.layers]",
                )
            )
    # The allow-edge scan runs over every module once: unjustified
    # comments are findings even when no edge needed them.
    allowed_lines: Dict[str, Set[int]] = {}
    for module, lines in graph.sources.items():
        path = graph.paths.get(module, module)
        for allow in _scan_allows(lines):
            if not allow.justified:
                findings.append(
                    Finding(
                        code="AUD000",
                        path=path,
                        line=allow.line,
                        col=0,
                        message=(
                            "allow-edge comment without a justification: "
                            "write `# reproaudit: allow-edge -- <why this "
                            "coupling is sound>` (an unjustified "
                            "allow-edge suppresses nothing)"
                        ),
                        fix_hint="append ` -- <justification>` or remove "
                        "the offending import",
                    )
                )
                continue
            covered = allowed_lines.setdefault(module, set())
            covered.add(allow.line)
            if allow.standalone:
                covered.add(allow.line + 1)
    for edge in sorted(
        graph.edges, key=lambda e: (e.path, e.line, e.col, e.dst)
    ):
        src_layer = assignments.get(edge.src)
        dst_layer = assignments.get(edge.dst)
        if src_layer is None or dst_layer is None or src_layer == dst_layer:
            continue
        if dst_layer in may_import.get(src_layer, ()):
            continue
        if edge.line in allowed_lines.get(edge.src, ()):
            continue
        if dst_layer in closure.get(src_layer, set()):
            findings.append(
                Finding(
                    code="ARC003",
                    path=edge.path,
                    line=edge.line,
                    col=edge.col,
                    message=(
                        f"layer-skipping import: {edge.src} "
                        f"[{src_layer}] imports {edge.dst} [{dst_layer}] "
                        f"({edge.kind}); {dst_layer} is reachable from "
                        f"{src_layer} only transitively"
                    ),
                    fix_hint="route through the intermediate layer, add "
                    f"'{dst_layer}' to {src_layer}'s may_import, or "
                    "justify with `# reproaudit: allow-edge -- <why>`",
                )
            )
        else:
            findings.append(
                Finding(
                    code="ARC002",
                    path=edge.path,
                    line=edge.line,
                    col=edge.col,
                    message=(
                        f"forbidden import: {edge.src} [{src_layer}] "
                        f"imports {edge.dst} [{dst_layer}] ({edge.kind}); "
                        f"{src_layer} may import only "
                        + (
                            ", ".join(may_import.get(src_layer, ()))
                            or "nothing"
                        )
                    ),
                    fix_hint="move the shared code down a layer, invert "
                    "the dependency, or justify with `# reproaudit: "
                    "allow-edge -- <why>`",
                )
            )
    return findings
