"""Pass 2: serialized surfaces against the committed ``schemas.lock.json``.

Five formats cross a process or filesystem boundary and must survive a
release without drifting, or crash-safe resume (PR 8) and bench
regression gating (PR 7) silently break:

* ``stage_store`` -- the StageStore tagged-JSON codec: format version,
  the fixed stage order, the codec's document keys, and the ordered
  fields of every registered payload dataclass;
* ``campaign_checkpoint`` -- the shard journal's header and row keys;
* ``shard_wire`` -- the packed tuple workers send back (the exact
  ``_pack_result`` return expression, plus the index span rows ride
  at);
* ``bench_report`` -- the ``repro-bench-v1`` document: schema string,
  required keys, and the report dataclass's fields;
* ``span_record`` -- SpanRecord's fields and the PackedSpan row type.

Everything is extracted *statically* (``ast`` only): the schema of a
surface is what its source says, not what an import happens to produce,
so the audit works on a tree that does not import (and costs nothing).
Drift against the lockfile is a hard failure until the change is made
deliberate with ``repro audit --update-locks``.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.devtools.config import parse_python
from repro.devtools.rules import Finding

__all__ = [
    "SCHEMA_LOCK_VERSION",
    "canonical_json",
    "diff_locked",
    "extract_schemas",
]

SCHEMA_LOCK_VERSION = 1


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------


def _parse_module(root: str, rel_path: str) -> Tuple[Optional[ast.Module], Optional[Finding]]:
    try:
        with open(os.path.join(root, rel_path), encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        return None, Finding(
            code="SCH003",
            path=rel_path,
            line=1,
            col=0,
            message=f"locked surface module unreadable: {exc}",
            fix_hint="restore the module or update [tool.reproaudit]'s "
            "package_root",
        )
    return parse_python(source, rel_path, "AUD001")


def _assigned_constant(tree: ast.Module, name: str) -> Any:
    """The literal value of a module-level ``NAME = <literal>``."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                try:
                    return ast.literal_eval(value)
                except ValueError:
                    return ast.unparse(value)
    return None


def _class_def(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _dataclass_fields(cls: ast.ClassDef) -> List[Dict[str, str]]:
    """Ordered ``{name, type}`` for every annotated field of a dataclass."""
    fields: List[Dict[str, str]] = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            fields.append(
                {
                    "name": node.target.id,
                    "type": ast.unparse(node.annotation),
                }
            )
    return fields


def _imported_from(tree: ast.Module) -> Dict[str, str]:
    """name -> defining module, from the module's ImportFrom statements."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                out[alias.asname or alias.name] = node.module
    return out


def _dict_literal_keys(tree: ast.Module) -> List[List[str]]:
    """Every all-string-key dict literal's key tuple, sorted and unique.

    A serialization module's write sites are dict literals; their key
    sets *are* the record schema.  Single-key dicts are noise and are
    skipped.
    """
    seen: Dict[Tuple[str, ...], None] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict) or len(node.keys) < 2:
            continue
        keys: List[str] = []
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
            else:
                break
        else:
            seen[tuple(keys)] = None
    return sorted(list(k) for k in seen)


def _function_def(tree: ast.Module, name: str) -> Optional[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


# ----------------------------------------------------------------------
# per-surface extractors
# ----------------------------------------------------------------------


def _extract_stage_store(
    root: str, package_root: str, findings: List[Finding]
) -> Optional[Dict[str, Any]]:
    rel = f"{package_root}/core/stages.py"
    tree, failure = _parse_module(root, rel)
    if tree is None:
        if failure is not None:
            findings.append(failure)
        return None
    # _REGISTERED_TYPES is a tuple of *names*; pull the identifier list
    # straight from the AST.
    names: List[str] = []
    for node in tree.body:
        target_names = []
        value = None
        if isinstance(node, ast.Assign):
            target_names = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            target_names = [node.target.id]
            value = node.value
        if "_REGISTERED_TYPES" in target_names and isinstance(
            value, ast.Tuple
        ):
            names = [
                e.id for e in value.elts if isinstance(e, ast.Name)
            ]
    imports = _imported_from(tree)
    dataclasses: Dict[str, List[Dict[str, str]]] = {}
    module_cache: Dict[str, Optional[ast.Module]] = {}
    for name in names:
        module = imports.get(name)
        if module is None:
            cls = _class_def(tree, name)
        else:
            if module not in module_cache:
                mod_rel = (
                    package_root.split("/")[0]
                    + "/"
                    + module.replace(".", "/")
                    + ".py"
                )
                mod_tree, mod_failure = _parse_module(root, mod_rel)
                if mod_tree is None and mod_failure is not None:
                    findings.append(mod_failure)
                module_cache[module] = mod_tree
            mod_tree = module_cache[module]
            cls = _class_def(mod_tree, name) if mod_tree else None
        if cls is None:
            findings.append(
                Finding(
                    code="SCH003",
                    path=rel,
                    line=1,
                    col=0,
                    message=f"registered stage payload type {name} could "
                    "not be located statically",
                    fix_hint="keep _REGISTERED_TYPES entries as plain "
                    "imported dataclass names",
                )
            )
            continue
        dataclasses[name] = _dataclass_fields(cls)
    return {
        "format_version": _assigned_constant(tree, "_FORMAT_VERSION"),
        "stage_order": list(_assigned_constant(tree, "STAGE_ORDER") or ()),
        "document_keys": _dict_literal_keys(tree),
        "registered_dataclasses": dataclasses,
    }


def _extract_campaign_checkpoint(
    root: str, package_root: str, findings: List[Finding]
) -> Optional[Dict[str, Any]]:
    rel = f"{package_root}/measure/checkpoint.py"
    tree, failure = _parse_module(root, rel)
    if tree is None:
        if failure is not None:
            findings.append(failure)
        return None
    return {
        "format_version": _assigned_constant(tree, "_FORMAT_VERSION"),
        "record_keys": _dict_literal_keys(tree),
    }


def _extract_shard_wire(
    root: str, package_root: str, findings: List[Finding]
) -> Optional[Dict[str, Any]]:
    rel = f"{package_root}/measure/executor.py"
    tree, failure = _parse_module(root, rel)
    if tree is None:
        if failure is not None:
            findings.append(failure)
        return None
    pack = _function_def(tree, "_pack_result")
    pack_shape = None
    if pack is not None:
        for node in ast.walk(pack):
            if isinstance(node, ast.Return) and node.value is not None:
                pack_shape = ast.unparse(node.value)
                break
    span_index = None
    spans = _function_def(tree, "_packed_spans")
    if spans is not None:
        # The optional span element rides at the index the guard tests:
        # `len(packed) > N and packed[N]`.
        for node in ast.walk(spans):
            if (
                isinstance(node, ast.Compare)
                and isinstance(node.ops[0], ast.Gt)
                and isinstance(node.comparators[0], ast.Constant)
            ):
                span_index = node.comparators[0].value
                break
    if pack_shape is None:
        findings.append(
            Finding(
                code="SCH003",
                path=rel,
                line=1,
                col=0,
                message="_pack_result's return expression not found; the "
                "shard wire tuple cannot be locked",
                fix_hint="keep _pack_result a single-return function",
            )
        )
    return {
        "pack_result": pack_shape,
        "span_row_index": span_index,
    }


def _extract_bench_report(
    root: str, package_root: str, findings: List[Finding]
) -> Optional[Dict[str, Any]]:
    rel = f"{package_root}/bench/report.py"
    tree, failure = _parse_module(root, rel)
    if tree is None:
        if failure is not None:
            findings.append(failure)
        return None
    cls = _class_def(tree, "BenchReport")
    return {
        "schema": _assigned_constant(tree, "BENCH_SCHEMA"),
        "required_keys": list(
            _assigned_constant(tree, "_REQUIRED_KEYS") or ()
        ),
        "fields": _dataclass_fields(cls) if cls is not None else [],
    }


def _extract_span_record(
    root: str, package_root: str, findings: List[Finding]
) -> Optional[Dict[str, Any]]:
    rel = f"{package_root}/obs/span.py"
    tree, failure = _parse_module(root, rel)
    if tree is None:
        if failure is not None:
            findings.append(failure)
        return None
    cls = _class_def(tree, "SpanRecord")
    packed = None
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "PackedSpan"
                for t in node.targets
            )
        ):
            packed = ast.unparse(node.value)
    return {
        "fields": _dataclass_fields(cls) if cls is not None else [],
        "packed_span": packed,
    }


_EXTRACTORS = {
    "stage_store": _extract_stage_store,
    "campaign_checkpoint": _extract_campaign_checkpoint,
    "shard_wire": _extract_shard_wire,
    "bench_report": _extract_bench_report,
    "span_record": _extract_span_record,
}


def extract_schemas(
    root: str, package_root: str = "src/repro"
) -> Tuple[Dict[str, Any], List[Finding]]:
    """All surfaces' live schemas, plus extraction findings."""
    findings: List[Finding] = []
    schemas: Dict[str, Any] = {"version": SCHEMA_LOCK_VERSION}
    for name, extract in sorted(_EXTRACTORS.items()):
        surface = extract(root, package_root, findings)
        if surface is not None:
            schemas[name] = surface
    return schemas, findings


# ----------------------------------------------------------------------
# lockfile comparison
# ----------------------------------------------------------------------


def canonical_json(data: Any) -> str:
    """The one serialization committed lockfiles use."""
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


def _diff_paths(
    locked: Any, live: Any, prefix: str, out: List[Tuple[str, str]]
) -> None:
    if isinstance(locked, dict) and isinstance(live, dict):
        for key in sorted(set(locked) | set(live)):
            where = f"{prefix}.{key}" if prefix else key
            if key not in locked:
                out.append((where, "added (not in lockfile)"))
            elif key not in live:
                out.append((where, "removed (still in lockfile)"))
            else:
                _diff_paths(locked[key], live[key], where, out)
        return
    if locked != live:
        out.append(
            (prefix, f"locked {_compact(locked)} != live {_compact(live)}")
        )


def _compact(value: Any) -> str:
    text = json.dumps(value, sort_keys=True)
    return text if len(text) <= 120 else text[:117] + "..."


def diff_locked(
    locked: Any,
    live: Any,
    lock_path: str,
    *,
    code: str,
    surface_paths: Dict[str, str],
    update_hint: str,
) -> List[Finding]:
    """One finding per drifted top-level surface (stable order)."""
    findings: List[Finding] = []
    paths: List[Tuple[str, str]] = []
    _diff_paths(locked, live, "", paths)
    by_surface: Dict[str, List[Tuple[str, str]]] = {}
    for where, what in paths:
        surface = where.split(".", 1)[0]
        by_surface.setdefault(surface, []).append((where, what))
    for surface in sorted(by_surface):
        details = "; ".join(
            f"{where}: {what}" for where, what in by_surface[surface][:4]
        )
        extra = len(by_surface[surface]) - 4
        if extra > 0:
            details += f"; (+{extra} more)"
        findings.append(
            Finding(
                code=code,
                path=surface_paths.get(surface, lock_path),
                line=1,
                col=0,
                message=f"locked surface '{surface}' drifted: {details}",
                fix_hint=update_hint,
            )
        )
    return findings
