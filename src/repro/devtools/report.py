"""Renderers for devtools findings: terminal text and machine JSON.

Shared by ``repro lint`` and ``repro audit`` -- both emit the same
GCC-style text lines and the same JSON payload shape, differing only in
the ``tool`` name stamped on the summary and the rule catalogue used to
describe finding codes.  The defaults keep reprolint's original output
byte-identical.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro.devtools.rules import RULES, Finding, RuleSpec

__all__ = ["render_text", "render_json", "summarize"]


def summarize(findings: Sequence[Finding]) -> Dict[str, int]:
    """Finding count per rule code, sorted by code."""
    counts: Dict[str, int] = {}
    for finding in sorted(findings, key=lambda f: f.code):
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return counts


def render_text(
    findings: Sequence[Finding],
    *,
    files_checked: int = 0,
    tool: str = "reprolint",
) -> str:
    """GCC-style ``path:line:col: CODE message`` lines plus a summary."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
    lines: List[str] = []
    for f in ordered:
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.code} {f.message}")
        lines.append(f"    hint: {f.fix_hint}")
    if findings:
        per_rule = ", ".join(
            f"{code} x{count}" for code, count in summarize(findings).items()
        )
        lines.append("")
        lines.append(
            f"{tool}: {len(findings)} finding(s) in "
            f"{len({f.path for f in findings})} file(s) "
            f"({files_checked} checked): {per_rule}"
        )
    else:
        lines.append(f"{tool}: clean ({files_checked} file(s) checked)")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    *,
    files_checked: int = 0,
    tool: str = "reprolint",
    catalog: Optional[Mapping[str, RuleSpec]] = None,
) -> str:
    """Stable machine-readable output for CI annotation tooling."""
    specs = RULES if catalog is None else catalog
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
    payload = {
        "version": 1,
        "tool": tool,
        "files_checked": files_checked,
        "counts": summarize(findings),
        "rules": {
            code: {"title": spec.title, "rationale": spec.rationale}
            for code, spec in sorted(specs.items())
            if any(f.code == code for f in findings)
        },
        "findings": [f.as_dict() for f in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
