"""The REP rules: AST checks behind the determinism & purity auditor.

Each rule maps one digest invariant onto a mechanically checkable
pattern.  The checks are deliberately syntactic -- no type inference --
so every rule documents the pattern it matches and accepts a
``# reprolint: disable=REPNNN -- justification`` escape hatch for the
cases the heuristic cannot see through (see
:mod:`repro.devtools.reprolint` for the comment grammar).

=======  ==============================================================
code     invariant
=======  ==============================================================
REP001   RNG draws on digest paths must be keyed to record identity,
         never pulled from a shared sequential stream.
REP002   Iteration feeding serialization / digests / shard merges must
         not walk sets or dict views unsorted.
REP003   Configs and fault plans are shared across processes and hashed
         for provenance; their dataclasses must be ``frozen=True``.
REP004   Inference code must not read wall clocks or the environment;
         two runs of one (seed, config) pair must see identical inputs.
REP005   Mutable default arguments alias state across calls -- a purity
         hazard everywhere, not just on digest paths.
REP006   Callables handed to the multiprocessing executor must be
         module-level: closures capture parent state that pickling or
         fork re-execution silently diverges from.
REP007   Broad exception handlers on measurement/inference paths must
         re-raise or classify into the ``repro.errors`` taxonomy;
         swallowing ``Exception`` hides failures from the supervisor's
         retry / quarantine / salvage ladder.
REP008   Adaptive control decisions (circuit breakers, probe governor)
         must fold from probe counts, never wall-clock reads -- even
         the monotonic clocks REP004 exempts: a breaker keyed on
         elapsed time trips differently on a slower machine.
=======  ==============================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

__all__ = ["Finding", "RuleSpec", "RULES", "run_rule", "all_rule_codes"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``fatal`` marks findings that mean the check itself could not run
    (an unparseable file, a missing lockfile): the CLIs report those
    with exit status 2 instead of 1, per the shared exit contract.
    """

    code: str
    path: str
    line: int
    col: int
    message: str
    fix_hint: str
    fatal: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "fatal": self.fatal,
        }


@dataclass(frozen=True)
class RuleSpec:
    """A registered rule: identity, rationale, and its checker."""

    code: str
    title: str
    rationale: str
    fix_hint: str
    check: Callable[["RuleContext"], List[Finding]]


@dataclass(frozen=True)
class RuleContext:
    """Everything a checker needs about one parsed file."""

    path: str
    tree: ast.Module
    source_lines: Tuple[str, ...]


#: the four comprehension node types share ``generators``.
_Comprehension = Union[ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp]
_AnyFunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


# ----------------------------------------------------------------------
# REP001 -- unkeyed / shared RNG draws
# ----------------------------------------------------------------------

#: methods of ``random.Random`` (and the module-level aliases) that
#: consume the shared stream and therefore make results order-dependent.
RNG_DRAW_METHODS = frozenset(
    {
        "random",
        "randrange",
        "randint",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "expovariate",
        "lognormvariate",
        "normalvariate",
        "gauss",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "binomialvariate",
    }
)

_RNG_NAME_RE = re.compile(r"(^|_)rng$|^rng", re.IGNORECASE)

#: helper constructors that return a *keyed* RNG (identity-derived, so
#: drawing from them is order-independent by construction).
_KEYED_RNG_FACTORIES = frozenset({"Random", "make_rng", "probe_rng"})


def _is_rng_name(name: str) -> bool:
    return bool(_RNG_NAME_RE.search(name))


def _is_keyed_rng_call(node: ast.AST) -> bool:
    """``random.Random(...)``, ``make_rng(...)``, ``engine.probe_rng(...)``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _KEYED_RNG_FACTORIES
    if isinstance(func, ast.Attribute):
        return func.attr in _KEYED_RNG_FACTORIES
    return False


def _is_order_safe_iterable(node: ast.expr) -> bool:
    """Iterables whose order is defined by construction.

    ``range``/``sorted``/``enumerate``/``reversed``/``zip`` (the latter
    three when their operands are safe) and literal sequences.  A bare
    name or attribute is conservatively *unsafe*: its order may be set
    iteration or dict insertion, which the linter cannot see.
    """
    if isinstance(node, (ast.Constant, ast.Tuple, ast.List)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        name = node.func.id
        if name in ("range", "sorted"):
            return True
        if name in ("enumerate", "reversed", "zip"):
            return all(_is_order_safe_iterable(arg) for arg in node.args)
    return False


class _Rep001Visitor(ast.NodeVisitor):
    """Flags draws from shared or sequentially-coupled RNG streams.

    A draw is flagged when its receiver is

    * the ``random`` module itself (``random.random()``),
    * an attribute whose terminal name looks like an RNG
      (``self._rng.choice(...)`` -- object-lifetime streams couple every
      caller to every other caller),
    * a local name that was assigned from such an attribute
      (``rng = self._rng`` then ``rng.random()``), or
    * a local keyed RNG (``rng = random.Random(repr(...))``) drawn
      *inside a loop entered after the construction* whose iterable is
      not provably ordered -- the draw sequence then couples to set or
      dict iteration order (the PeeringDB tenant-listing bug).

    Draws are allowed on a fresh ``random.Random(...)`` /
    ``make_rng(...)`` / ``probe_rng(...)`` value outside such loops, and
    on bare parameters named ``rng`` (the caller owns the keying;
    ``net/rng.py`` helpers rely on this).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        #: per-function name state: name -> ("shared"|"keyed", loop_depth)
        self._scopes: List[Dict[str, Tuple[str, int]]] = [{}]
        #: stack of loop-iterable safety flags, innermost last.
        self._loops: List[bool] = []

    # -- scope handling --------------------------------------------------

    def _enter(self) -> None:
        self._scopes.append({})

    def _exit(self) -> None:
        self._scopes.pop()

    def _lookup(self, name: str) -> Optional[Tuple[str, int]]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter()
        self.generic_visit(node)
        self._exit()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter()
        self.generic_visit(node)
        self._exit()

    # -- loop tracking ----------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._loops.append(_is_order_safe_iterable(node.iter))
        for child in [node.target] + node.body:
            self.visit(child)
        self._loops.pop()
        for child in node.orelse:
            self.visit(child)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._loops.append(True)  # while loops do not iterate a container
        for child in node.body:
            self.visit(child)
        self._loops.pop()
        for child in node.orelse:
            self.visit(child)

    def _visit_comp(self, node: _Comprehension) -> None:
        generators = node.generators
        for gen in generators:
            self.visit(gen.iter)
        self._loops.extend(_is_order_safe_iterable(g.iter) for g in generators)
        for gen in generators:
            for cond in gen.ifs:
                self.visit(cond)
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.comprehension):
                self.visit(child)
        del self._loops[len(self._loops) - len(generators) :]

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    # -- assignments tracked for aliasing --------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._track(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._track([node.target], node.value)
        self.generic_visit(node)

    def _track(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        state: Optional[str] = None
        if _is_keyed_rng_call(value):
            state = "keyed"
        elif isinstance(value, ast.Attribute) and _is_rng_name(value.attr):
            state = "shared"
        if state is not None:
            for name in names:
                self._scopes[-1][name] = (state, len(self._loops))
        else:
            # Reassignment from anything else clears the tracking.
            for name in names:
                for scope in self._scopes:
                    scope.pop(name, None)

    # -- the draws themselves --------------------------------------------

    def _flag(self, node: ast.Call, method: str, what: str) -> None:
        self.findings.append(
            Finding(
                code="REP001",
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"draw `.{method}()` from {what}: the result depends "
                    "on how many draws ran before it, so construction or "
                    "lookup order leaks into the digest"
                ),
                fix_hint=(
                    "key the draw to the record's identity: "
                    "`keyed_uniform(label, seed, *key)` or a fresh "
                    "`random.Random(repr((label, seed) + key))` per record "
                    "(see net/rng.py)"
                ),
            )
        )

    def _unsafe_loop_since(self, depth: int) -> bool:
        return any(not safe for safe in self._loops[depth:])

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in RNG_DRAW_METHODS:
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id == "random":
                    self._flag(node, func.attr, "the module-level `random` stream")
                else:
                    tracked = self._lookup(receiver.id)
                    if tracked is not None:
                        state, depth = tracked
                        if state == "shared":
                            self._flag(
                                node,
                                func.attr,
                                f"`{receiver.id}` (aliased from a shared RNG "
                                "attribute)",
                            )
                        elif state == "keyed" and self._unsafe_loop_since(depth):
                            self._flag(
                                node,
                                func.attr,
                                f"`{receiver.id}` drawn inside a loop whose "
                                "iteration order the linter cannot prove "
                                "(set/dict/opaque iterable)",
                            )
            elif isinstance(receiver, ast.Attribute) and _is_rng_name(receiver.attr):
                self._flag(
                    node,
                    func.attr,
                    f"`{ast.unparse(receiver)}` (a shared sequential RNG)",
                )
        self.generic_visit(node)


def _check_rep001(ctx: RuleContext) -> List[Finding]:
    visitor = _Rep001Visitor(ctx.path)
    visitor.visit(ctx.tree)
    return visitor.findings


# ----------------------------------------------------------------------
# REP002 -- unsorted iteration feeding serialization / digests / merges
# ----------------------------------------------------------------------

#: a function is a serialization context when its name matches this.
_SERIALIZATION_NAME_RE = re.compile(
    r"digest|fingerprint|serial|canonical|checksum|snapshot"
    r"|(^|_)pack|(^|_)merge|to_json|as_json|to_wire|journal",
    re.IGNORECASE,
)

#: ...or when its body hashes or dumps.
_HASHING_CALL_ATTRS = frozenset({"sha256", "sha1", "md5", "blake2b", "update", "dumps", "dump"})


def _is_unordered_expr(node: ast.expr) -> Optional[str]:
    """Name of the unordered construct, or None when the order is defined."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"`{func.id}(...)`"
        if isinstance(func, ast.Attribute) and func.attr in ("values", "keys", "items"):
            return f"`.{func.attr}()`"
    return None


class _Rep002Visitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        self._context_depth = 0

    def _is_serialization_fn(self, node: _AnyFunctionDef) -> bool:
        if _SERIALIZATION_NAME_RE.search(node.name):
            return True
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _HASHING_CALL_ATTRS
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in ("hashlib", "json", "h", "hasher")
            ):
                return True
        return False

    def _visit_fn(self, node: _AnyFunctionDef) -> None:
        entered = self._is_serialization_fn(node)
        if entered:
            self._context_depth += 1
        self.generic_visit(node)
        if entered:
            self._context_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_fn(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_fn(node)

    def _flag(self, node: ast.AST, construct: str) -> None:
        self.findings.append(
            Finding(
                code="REP002",
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"iteration over {construct} inside a serialization/"
                    "digest/merge context without `sorted()`: set and dict-"
                    "view order is an implementation detail, so the "
                    "serialized bytes are not canonical"
                ),
                fix_hint="wrap the iterable in `sorted(...)` (with a key if "
                "elements are not naturally ordered)",
            )
        )

    def _check_iter(self, iter_node: ast.expr) -> None:
        if self._context_depth == 0:
            return
        construct = _is_unordered_expr(iter_node)
        if construct is not None:
            self._flag(iter_node, construct)

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: _Comprehension) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_Call(self, node: ast.Call) -> None:
        # tuple(X) / list(X) materialize X's order directly.
        if (
            self._context_depth > 0
            and isinstance(node.func, ast.Name)
            and node.func.id in ("tuple", "list")
            and node.args
        ):
            self._check_iter(node.args[0])
        self.generic_visit(node)


def _check_rep002(ctx: RuleContext) -> List[Finding]:
    visitor = _Rep002Visitor(ctx.path)
    visitor.visit(ctx.tree)
    return visitor.findings


# ----------------------------------------------------------------------
# REP003 -- configs and fault plans must be frozen dataclasses
# ----------------------------------------------------------------------


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    for dec in node.decorator_list:
        if isinstance(dec, ast.Name) and dec.id == "dataclass":
            return dec
        if isinstance(dec, ast.Call):
            func = dec.func
            if isinstance(func, ast.Name) and func.id == "dataclass":
                return dec
            if isinstance(func, ast.Attribute) and func.attr == "dataclass":
                return dec
        if isinstance(dec, ast.Attribute) and dec.attr == "dataclass":
            return dec
    return None


def _is_frozen(dec: ast.expr) -> bool:
    if not isinstance(dec, ast.Call):
        return False
    for kw in dec.keywords:
        if kw.arg == "frozen":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _check_rep003(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        dec = _dataclass_decorator(node)
        if dec is not None and not _is_frozen(dec):
            findings.append(
                Finding(
                    code="REP003",
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"dataclass `{node.name}` is not frozen: configs and "
                        "fault plans are shared with worker processes and "
                        "recorded for provenance, so in-place mutation "
                        "silently forks the run's identity"
                    ),
                    fix_hint="declare it `@dataclass(frozen=True)` and use "
                    "`dataclasses.replace` for variations",
                )
            )
    return findings


# ----------------------------------------------------------------------
# REP004 -- wall-clock / environment reads in inference code
# ----------------------------------------------------------------------

#: ``time.*`` names that read the wall clock.  ``perf_counter`` /
#: ``monotonic`` / ``sleep`` are exempt: they feed timing observability
#: (excluded from the digest), not inference values.
_WALL_CLOCK_TIME_ATTRS = frozenset({"time", "time_ns", "ctime", "localtime", "gmtime"})
_WALL_CLOCK_DT_ATTRS = frozenset({"now", "utcnow", "today"})


def _check_rep004(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []

    def flag(node: ast.AST, what: str) -> None:
        findings.append(
            Finding(
                code="REP004",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{what} inside inference code: the value differs "
                    "between two runs of the same (seed, config) pair, so "
                    "anything derived from it is unreproducible"
                ),
                fix_hint="derive the value from the seed/config, pass it in "
                "explicitly, or keep it in timing metrics (which are "
                "excluded from the digest; `time.perf_counter` is allowed)",
            )
        )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name):
                if value.id == "time" and node.attr in _WALL_CLOCK_TIME_ATTRS:
                    flag(node, f"wall-clock read `time.{node.attr}`")
                elif value.id in ("datetime", "date") and node.attr in _WALL_CLOCK_DT_ATTRS:
                    flag(node, f"wall-clock read `{value.id}.{node.attr}`")
                elif value.id == "os" and node.attr == "environ":
                    flag(node, "environment read `os.environ`")
            elif (
                isinstance(value, ast.Attribute)
                and value.attr in ("datetime", "date")
                and node.attr in _WALL_CLOCK_DT_ATTRS
            ):
                flag(node, f"wall-clock read `datetime.{value.attr}.{node.attr}`")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "getenv"
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
            ):
                flag(node, "environment read `os.getenv`")
    return findings


# ----------------------------------------------------------------------
# REP005 -- mutable default arguments
# ----------------------------------------------------------------------


def _mutable_default(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.List):
        return "[]"
    if isinstance(node, ast.Dict):
        return "{}"
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("list", "dict", "set", "bytearray"):
            return f"{node.func.id}()"
    return None


def _check_rep005(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            what = _mutable_default(default)
            if what is not None:
                findings.append(
                    Finding(
                        code="REP005",
                        path=ctx.path,
                        line=default.lineno,
                        col=default.col_offset,
                        message=(
                            f"mutable default {what} in `{node.name}`: the "
                            "object is created once and shared across every "
                            "call, so one caller's mutation leaks into the "
                            "next"
                        ),
                        fix_hint="default to `None` and create the container "
                        "inside the function body",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# REP006 -- closures handed to the multiprocessing executor
# ----------------------------------------------------------------------

_POOL_SUBMIT_ATTRS = frozenset(
    {
        "apply",
        "apply_async",
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
    }
)


class _Rep006Visitor(ast.NodeVisitor):
    """Flags lambdas / nested functions crossing a pool boundary.

    With ``fork`` the closure appears to work until the captured parent
    state drifts; with ``spawn`` it fails to pickle outright.  Either
    way a retried or resumed shard no longer reruns the same code, so
    the merge is not reproducible.  Only module-level callables (rebuilt
    from the pool initializer's explicit arguments) are safe to submit.
    """

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.findings: List[Finding] = []
        self._module_level: Set[str] = {
            n.name
            for n in tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        }
        self._nested: Set[str] = set()
        for outer in ast.walk(tree):
            if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(outer):
                    if inner is not outer and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._nested.add(inner.name)

    def _flag(self, node: ast.AST, what: str, method: str) -> None:
        self.findings.append(
            Finding(
                code="REP006",
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{what} passed to `{method}`: closures capture "
                    "non-module-level state that pickling/fork re-execution "
                    "does not reproduce, so a retried shard may run "
                    "different code than its first attempt"
                ),
                fix_hint="submit a module-level function and ship its inputs "
                "through the pool initializer or the call arguments",
            )
        )

    def _check_callable_arg(self, arg: ast.expr, node: ast.AST, method: str) -> None:
        if isinstance(arg, ast.Lambda):
            self._flag(node, "lambda", method)
        elif isinstance(arg, ast.Name):
            name = arg.id
            if name in self._nested and name not in self._module_level:
                self._flag(node, f"nested function `{name}`", method)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _POOL_SUBMIT_ATTRS and node.args:
                self._check_callable_arg(node.args[0], node, func.attr)
            elif func.attr == "Pool":
                for kw in node.keywords:
                    if kw.arg == "initializer":
                        self._check_callable_arg(kw.value, node, "Pool(initializer=...)")
        self.generic_visit(node)


def _check_rep006(ctx: RuleContext) -> List[Finding]:
    visitor = _Rep006Visitor(ctx.path, ctx.tree)
    visitor.visit(ctx.tree)
    return visitor.findings


# ----------------------------------------------------------------------
# REP007 -- broad exception handlers outside the error taxonomy
# ----------------------------------------------------------------------

#: Names from :mod:`repro.errors` whose presence in a handler body means
#: the failure is being classified rather than swallowed.
_TAXONOMY_NAMES = frozenset(
    {
        "ReproError",
        "TransportError",
        "DataError",
        "StageError",
        "StudyInterrupted",
        "DeadlineExceeded",
        "HungShardError",
        "ShardTimeoutError",
        "classify_error",
        "wrap_error",
    }
)

_BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _catches_broadly(handler: ast.ExceptHandler) -> bool:
    """True for ``except:``, ``except Exception``, ``except BaseException``
    (bare names or inside a tuple; ``as exc`` does not matter)."""
    node = handler.type
    if node is None:
        return True
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD_EXCEPTION_NAMES:
            return True
    return False


def _handler_classifies(handler: ast.ExceptHandler) -> bool:
    """A handler is fine if it re-raises (anything) or touches the
    taxonomy -- wrapping, classifying, or constructing a ``ReproError``."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Name) and node.id in _TAXONOMY_NAMES:
                return True
            if isinstance(node, ast.Attribute) and node.attr in _TAXONOMY_NAMES:
                return True
    return False


def _check_rep007(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _catches_broadly(node) or _handler_classifies(node):
            continue
        caught = "bare except" if node.type is None else ast.unparse(node.type)
        findings.append(
            Finding(
                code="REP007",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"broad handler ({caught}) neither re-raises nor "
                    "classifies into the repro.errors taxonomy: the "
                    "supervisor cannot retry, quarantine, or salvage a "
                    "failure it never sees"
                ),
                fix_hint="re-raise, or wrap via repro.errors.wrap_error / "
                "a ReproError subclass so the failure is classified",
            )
        )
    return findings


# ----------------------------------------------------------------------
# REP008 -- clock reads feeding adaptive control decisions
# ----------------------------------------------------------------------

#: Every ``time.*`` callable that reads *any* clock.  REP008 is
#: stricter than REP004 on purpose: on adaptive decision paths even the
#: digest-exempt monotonic clocks are banned, because a breaker or
#: governor that branches on elapsed time makes different decisions on
#: a slower machine -- the exact worker-count/hardware dependence the
#: health ledger's count-based contract rules out.
_ANY_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
    }
)


def _check_rep008(ctx: RuleContext) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[Tuple[int, int]] = set()

    # Names bound by ``from time import monotonic [as tick]``.
    imported_clocks: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _ANY_CLOCK_TIME_ATTRS:
                    imported_clocks.add(alias.asname or alias.name)

    def clock_call(node: ast.AST) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr in _ANY_CLOCK_TIME_ATTRS
        ):
            return f"time.{func.attr}"
        if isinstance(func, ast.Name) and func.id in imported_clocks:
            return func.id
        return None

    # Syntactic taint, whole-file scope: any name ever assigned from an
    # expression containing a clock read carries the clock with it.
    tainted: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        value: Optional[ast.expr]
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            value, targets = node.value, [node.target]
        else:
            continue
        if value is None:
            continue
        source = next(
            (c for sub in ast.walk(value) if (c := clock_call(sub))), None
        )
        if source is None:
            continue
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    tainted[sub.id] = source

    def flag(node: ast.AST, what: str, via: Optional[str] = None) -> None:
        key = (node.lineno, node.col_offset)
        if key in seen:
            return
        seen.add(key)
        detail = f" via `{via}`" if via else ""
        findings.append(
            Finding(
                code="REP008",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"clock read `{what}`{detail} feeds an adaptive "
                    "control decision: breaker/governor transitions must "
                    "fold from probe counts so any worker count (and any "
                    "machine speed) reproduces the serial run"
                ),
                fix_hint="key the decision on outcome counts/streaks from "
                "the health ledger; clocks may only feed timing metrics",
            )
        )

    # Decision contexts: branch/loop/assert tests plus any comparison.
    roots: List[ast.expr] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            roots.append(node.test)
        elif isinstance(node, ast.Assert):
            roots.append(node.test)
        elif isinstance(node, ast.Compare):
            roots.append(node)
    for root in roots:
        for sub in ast.walk(root):
            source = clock_call(sub)
            if source is not None:
                flag(sub, source)
            elif isinstance(sub, ast.Name) and sub.id in tainted:
                flag(sub, tainted[sub.id], via=sub.id)
    return findings


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

RULES: Mapping[str, RuleSpec] = {
    spec.code: spec
    for spec in (
        RuleSpec(
            code="REP001",
            title="unkeyed/shared RNG draw on a digest path",
            rationale=(
                "a sequential RNG couples every draw to the draws before "
                "it, so construction and lookup order leak into inference "
                "outputs (the bug PR 3 hand-fixed in WhoisRegistry.lookup)"
            ),
            fix_hint="key draws to record identity via net/rng.py helpers",
            check=_check_rep001,
        ),
        RuleSpec(
            code="REP002",
            title="unsorted set/dict-view iteration feeding serialization",
            rationale=(
                "serialized bytes, digests, and merge streams must be "
                "canonical; set and dict-view order is not"
            ),
            fix_hint="wrap the iterable in sorted(...)",
            check=_check_rep002,
        ),
        RuleSpec(
            code="REP003",
            title="non-frozen dataclass in a config/fault-plan module",
            rationale=(
                "configs and plans cross process boundaries and are "
                "recorded for provenance; mutation forks the run identity"
            ),
            fix_hint="declare @dataclass(frozen=True)",
            check=_check_rep003,
        ),
        RuleSpec(
            code="REP004",
            title="wall-clock or environment read in inference code",
            rationale=(
                "two runs of one (seed, config) pair must see identical "
                "inputs; clocks and environments differ between runs"
            ),
            fix_hint="derive from seed/config or keep it in timing metrics",
            check=_check_rep004,
        ),
        RuleSpec(
            code="REP005",
            title="mutable default argument",
            rationale="the default is shared across calls; mutation leaks",
            fix_hint="default to None, create the container in the body",
            check=_check_rep005,
        ),
        RuleSpec(
            code="REP006",
            title="closure passed to the multiprocessing executor",
            rationale=(
                "captured parent state is not reproduced by pickle/fork, "
                "so retried shards may run different code"
            ),
            fix_hint="submit module-level functions only",
            check=_check_rep006,
        ),
        RuleSpec(
            code="REP007",
            title="broad exception handler outside the error taxonomy",
            rationale=(
                "a swallowed Exception on a measurement path is a "
                "failure the supervisor can neither retry, quarantine, "
                "nor report; classification is what makes degradation "
                "deliberate instead of silent"
            ),
            fix_hint="re-raise or wrap via repro.errors.wrap_error",
            check=_check_rep007,
        ),
        RuleSpec(
            code="REP008",
            title="clock read feeding an adaptive control decision",
            rationale=(
                "the adaptive contract keys breaker and governor "
                "transitions on probe counts so any worker count "
                "reproduces the serial run; a decision fed by any clock "
                "-- wall, monotonic, or perf -- varies with machine "
                "speed and breaks that bit-for-bit guarantee"
            ),
            fix_hint="fold counts/streaks in the health ledger instead",
            check=_check_rep008,
        ),
    )
}


def all_rule_codes() -> Tuple[str, ...]:
    return tuple(sorted(RULES))


def run_rule(code: str, ctx: RuleContext) -> List[Finding]:
    """Run one registered rule over a parsed file."""
    return RULES[code].check(ctx)
