"""Autonomous system and organization identity primitives.

The paper's border detection works at the *organization* level (§3, §4.1):
Amazon announces space from at least eight ASNs (AS7224, AS16509, ...) and a
traceroute may cross several of them before leaving Amazon, so a border is
declared only when the hop's ORG differs from Amazon's ORG.  This module
defines the ASN/ORG vocabulary shared by the world builder, the datasets,
and the inference pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

ASN = int

#: ASN 0 marks hops whose address maps to no origin AS (private/shared space).
AS_UNKNOWN: ASN = 0

#: The Amazon ASNs the paper observed in its traceroutes (§3, footnote 4).
AMAZON_ASNS: FrozenSet[ASN] = frozenset(
    {7224, 16509, 19047, 14618, 38895, 39111, 8987, 9059}
)
AMAZON_PRIMARY_ASN: ASN = 16509
AMAZON_ORG_ID = "ORG-AMZN"

#: The other cloud providers used for VPI detection (§7.1, Table 4).
MICROSOFT_ASN: ASN = 8075
GOOGLE_ASN: ASN = 15169
IBM_ASN: ASN = 36351
ORACLE_ASN: ASN = 31898

OTHER_CLOUD_ASNS: Dict[str, ASN] = {
    "microsoft": MICROSOFT_ASN,
    "google": GOOGLE_ASN,
    "ibm": IBM_ASN,
    "oracle": ORACLE_ASN,
}

CLOUD_ORG_IDS: Dict[str, str] = {
    "amazon": AMAZON_ORG_ID,
    "microsoft": "ORG-MSFT",
    "google": "ORG-GOGL",
    "ibm": "ORG-IBM",
    "oracle": "ORG-ORCL",
}

#: Synthetic transit backbone ASes.  The first also carries the other
#: clouds' fallback paths; clients buy transit from one or two of them,
#: which gives bdrmap's thirdparty heuristic conflicting answers across
#: regions (§8) exactly as mixed provider sets do in the wild.  Part of
#: the ASN vocabulary (not the world builder) because the synthetic BGP
#: and relationship datasets key their transit edges off the same ASNs.
FALLBACK_TRANSIT_ASN: ASN = 64500
TRANSIT_ASNS: Tuple[ASN, ...] = (64500, 64501, 64502)


class ASKind:
    """Role of an AS in the synthetic Internet (string enum)."""

    CLOUD = "cloud"
    TIER1 = "tier1"           # very large transit (Pr-B groups)
    TIER2 = "tier2"           # regional transit (Pb-B group)
    ACCESS = "access"         # eyeball / access networks
    CONTENT = "content"       # CDNs and content networks
    ENTERPRISE = "enterprise"  # enterprises, universities (main VPI users)


@dataclass
class ASInfo:
    """Static identity of one autonomous system."""

    asn: ASN
    name: str
    org_id: str
    kind: str
    country: str = "US"
    siblings: List[ASN] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.asn < 0 or self.asn > 4_294_967_295:
            raise ValueError(f"ASN out of range: {self.asn}")


class ASRegistry:
    """Registry of every AS in a world, with ORG grouping.

    Mirrors what CAIDA's as2org dataset provides: a mapping from ASN to a
    unique organization identifier, so that sibling ASNs (e.g. Amazon's
    eight) can be collapsed during border detection.
    """

    def __init__(self) -> None:
        self._by_asn: Dict[ASN, ASInfo] = {}
        self._by_org: Dict[str, List[ASN]] = {}

    def add(self, info: ASInfo) -> ASInfo:
        if info.asn in self._by_asn:
            raise ValueError(f"duplicate ASN {info.asn}")
        self._by_asn[info.asn] = info
        self._by_org.setdefault(info.org_id, []).append(info.asn)
        return info

    def __contains__(self, asn: ASN) -> bool:
        return asn in self._by_asn

    def __len__(self) -> int:
        return len(self._by_asn)

    def __iter__(self):
        return iter(self._by_asn.values())

    def get(self, asn: ASN) -> ASInfo:
        try:
            return self._by_asn[asn]
        except KeyError:
            raise KeyError(f"unknown ASN {asn}") from None

    def maybe(self, asn: ASN) -> Optional[ASInfo]:
        return self._by_asn.get(asn)

    def org_of(self, asn: ASN) -> Optional[str]:
        info = self._by_asn.get(asn)
        return info.org_id if info else None

    def asns_of_org(self, org_id: str) -> List[ASN]:
        return list(self._by_org.get(org_id, []))

    def same_org(self, a: ASN, b: ASN) -> bool:
        org_a, org_b = self.org_of(a), self.org_of(b)
        return org_a is not None and org_a == org_b

    def of_kind(self, kind: str) -> List[ASInfo]:
        return [info for info in self._by_asn.values() if info.kind == kind]


def is_amazon_asn(asn: ASN) -> bool:
    """True for any of Amazon's sibling ASNs."""
    return asn in AMAZON_ASNS
