"""Geography: metro areas, geodesic distance, and the fiber RTT model.

Pinning (§6) geo-locates border interfaces to *metro areas*, so the metro is
our atomic location unit.  A metro has a name, country, the 3-letter airport
code that shows up in router DNS names, and coordinates.  Distances between
metros drive the propagation-delay model used by the ping and traceroute
simulators; the 2 ms co-presence knee of Fig. 4 emerges from this model
(2 ms RTT ~ 200 km of fiber), not from hard-coding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

EARTH_RADIUS_KM = 6371.0

# Effective propagation speed in fiber is ~2/3 c ~= 200 km/ms one way, and
# terrestrial paths are not great circles; ROUTE_INFLATION stretches the
# geodesic to approximate real fiber routes.
FIBER_KM_PER_MS_ONE_WAY = 200.0
ROUTE_INFLATION = 1.4


@dataclass(frozen=True)
class Metro:
    """A metropolitan area that can host colo facilities and IXPs."""

    code: str      # 3-letter airport code, e.g. "IAD"
    city: str
    country: str
    lat: float
    lon: float
    region_hint: Optional[str] = None  # AWS region whose metro this is, if any

    def __str__(self) -> str:
        return f"{self.city} ({self.code})"


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def metro_distance_km(a: Metro, b: Metro) -> float:
    """Inflated fiber-route distance between two metros."""
    if a.code == b.code:
        return 0.0
    return haversine_km(a.lat, a.lon, b.lat, b.lon) * ROUTE_INFLATION


def propagation_rtt_ms(a: Metro, b: Metro) -> float:
    """Round-trip propagation delay between two metros in milliseconds."""
    return 2.0 * metro_distance_km(a, b) / FIBER_KM_PER_MS_ONE_WAY


# ---------------------------------------------------------------------------
# Metro catalog.  Coordinates are approximate city centres; codes are the
# IATA codes commonly embedded in router DNS names (DRoP-style parsing, §6.1).
# The first 15 entries are the metros of the 15 AWS regions the paper used.
# ---------------------------------------------------------------------------

_METRO_ROWS: Tuple[Tuple[str, str, str, float, float, Optional[str]], ...] = (
    # code, city, country, lat, lon, aws region hint
    ("IAD", "Ashburn", "US", 39.04, -77.49, "us-east-1"),
    ("CMH", "Columbus", "US", 39.96, -83.00, "us-east-2"),
    ("SJC", "San Jose", "US", 37.34, -121.89, "us-west-1"),
    ("PDX", "Portland", "US", 45.52, -122.68, "us-west-2"),
    ("YUL", "Montreal", "CA", 45.50, -73.57, "ca-central-1"),
    ("DUB", "Dublin", "IE", 53.35, -6.26, "eu-west-1"),
    ("LHR", "London", "GB", 51.51, -0.13, "eu-west-2"),
    ("CDG", "Paris", "FR", 48.86, 2.35, "eu-west-3"),
    ("FRA", "Frankfurt", "DE", 50.11, 8.68, "eu-central-1"),
    ("GRU", "Sao Paulo", "BR", -23.55, -46.63, "sa-east-1"),
    ("SIN", "Singapore", "SG", 1.35, 103.82, "ap-southeast-1"),
    ("SYD", "Sydney", "AU", -33.87, 151.21, "ap-southeast-2"),
    ("NRT", "Tokyo", "JP", 35.68, 139.69, "ap-northeast-1"),
    ("ICN", "Seoul", "KR", 37.57, 126.98, "ap-northeast-2"),
    ("BOM", "Mumbai", "IN", 19.08, 72.88, "ap-south-1"),
    # Other major peering metros (no AWS region).
    ("LAX", "Los Angeles", "US", 34.05, -118.24, None),
    ("SEA", "Seattle", "US", 47.61, -122.33, None),
    ("ORD", "Chicago", "US", 41.88, -87.63, None),
    ("DFW", "Dallas", "US", 32.78, -96.80, None),
    ("ATL", "Atlanta", "US", 33.75, -84.39, None),
    ("MIA", "Miami", "US", 25.76, -80.19, None),
    ("JFK", "New York", "US", 40.71, -74.01, None),
    ("BOS", "Boston", "US", 42.36, -71.06, None),
    ("DEN", "Denver", "US", 39.74, -104.99, None),
    ("PHX", "Phoenix", "US", 33.45, -112.07, None),
    ("SLC", "Salt Lake City", "US", 40.76, -111.89, None),
    ("MSP", "Minneapolis", "US", 44.98, -93.27, None),
    ("IAH", "Houston", "US", 29.76, -95.37, None),
    ("LAS", "Las Vegas", "US", 36.17, -115.14, None),
    ("YYZ", "Toronto", "CA", 43.65, -79.38, None),
    ("YVR", "Vancouver", "CA", 49.28, -123.12, None),
    ("AMS", "Amsterdam", "NL", 52.37, 4.90, None),
    ("MAD", "Madrid", "ES", 40.42, -3.70, None),
    ("MXP", "Milan", "IT", 45.46, 9.19, None),
    ("ZRH", "Zurich", "CH", 47.38, 8.54, None),
    ("VIE", "Vienna", "AT", 48.21, 16.37, None),
    ("ARN", "Stockholm", "SE", 59.33, 18.07, None),
    ("CPH", "Copenhagen", "DK", 55.68, 12.57, None),
    ("OSL", "Oslo", "NO", 59.91, 10.75, None),
    ("HEL", "Helsinki", "FI", 60.17, 24.94, None),
    ("WAW", "Warsaw", "PL", 52.23, 21.01, None),
    ("PRG", "Prague", "CZ", 50.08, 14.44, None),
    ("BRU", "Brussels", "BE", 50.85, 4.35, None),
    ("LIS", "Lisbon", "PT", 38.72, -9.14, None),
    ("MRS", "Marseille", "FR", 43.30, 5.37, None),
    ("HKG", "Hong Kong", "HK", 22.32, 114.17, None),
    ("TPE", "Taipei", "TW", 25.03, 121.57, None),
    ("KUL", "Kuala Lumpur", "MY", 3.14, 101.69, None),
    ("BKK", "Bangkok", "TH", 13.76, 100.50, None),
    ("CGK", "Jakarta", "ID", -6.21, 106.85, None),
    ("MNL", "Manila", "PH", 14.60, 120.98, None),
    ("KIX", "Osaka", "JP", 34.69, 135.50, None),
    ("MEL", "Melbourne", "AU", -37.81, 144.96, None),
    ("PER", "Perth", "AU", -31.95, 115.86, None),
    ("AKL", "Auckland", "NZ", -36.85, 174.76, None),
    ("MAA", "Chennai", "IN", 13.08, 80.27, None),
    ("DEL", "New Delhi", "IN", 28.61, 77.21, None),
    ("DXB", "Dubai", "AE", 25.20, 55.27, None),
    ("TLV", "Tel Aviv", "IL", 32.09, 34.78, None),
    ("IST", "Istanbul", "TR", 41.01, 28.98, None),
    ("JNB", "Johannesburg", "ZA", -26.20, 28.05, None),
    ("CPT", "Cape Town", "ZA", -33.92, 18.42, None),
    ("NBO", "Nairobi", "KE", -1.29, 36.82, None),
    ("LOS", "Lagos", "NG", 6.52, 3.38, None),
    ("SCL", "Santiago", "CL", -33.45, -70.67, None),
    ("EZE", "Buenos Aires", "AR", -34.60, -58.38, None),
    ("BOG", "Bogota", "CO", 4.71, -74.07, None),
    ("LIM", "Lima", "PE", -12.05, -77.04, None),
    ("MEX", "Mexico City", "MX", 19.43, -99.13, None),
    ("GIG", "Rio de Janeiro", "BR", -22.91, -43.17, None),
    ("FOR", "Fortaleza", "BR", -3.73, -38.53, None),
    ("MOW", "Moscow", "RU", 55.76, 37.62, None),
    ("KBP", "Kyiv", "UA", 50.45, 30.52, None),
    ("BUD", "Budapest", "HU", 47.50, 19.04, None),
    ("OTP", "Bucharest", "RO", 44.43, 26.10, None),
    ("SOF", "Sofia", "BG", 42.70, 23.32, None),
    ("ATH", "Athens", "GR", 37.98, 23.73, None),
    ("BLR", "Bangalore", "IN", 12.97, 77.59, None),
    ("MCT", "Muscat", "OM", 23.59, 58.41, None),
    ("DOH", "Doha", "QA", 25.29, 51.53, None),
)


class MetroCatalog:
    """Lookup table over the built-in metros.

    The catalog is immutable and shared; world builders select subsets of it.
    """

    def __init__(self, rows: Iterable[Tuple[str, str, str, float, float, Optional[str]]] = _METRO_ROWS) -> None:
        self._metros: Dict[str, Metro] = {}
        self._city_index: Dict[str, Metro] = {}
        self._dist_cache: Dict[Tuple[str, str], float] = {}
        for code, city, country, lat, lon, hint in rows:
            metro = Metro(code=code, city=city, country=country, lat=lat, lon=lon, region_hint=hint)
            if code in self._metros:
                raise ValueError(f"duplicate metro code {code}")
            self._metros[code] = metro
            self._city_index[city.lower()] = metro

    def __len__(self) -> int:
        return len(self._metros)

    def __iter__(self):
        return iter(self._metros.values())

    def __contains__(self, code: str) -> bool:
        return code in self._metros

    def get(self, code: str) -> Metro:
        try:
            return self._metros[code]
        except KeyError:
            raise KeyError(f"unknown metro code {code!r}") from None

    def by_city(self, city: str) -> Optional[Metro]:
        """Look up a metro by (case-insensitive) city name."""
        return self._city_index.get(city.lower())

    def codes(self) -> List[str]:
        return list(self._metros)

    def aws_region_metros(self) -> Dict[str, Metro]:
        """Map AWS region name -> metro for the 15 region metros."""
        return {
            m.region_hint: m for m in self._metros.values() if m.region_hint
        }

    def non_region_metros(self) -> List[Metro]:
        return [m for m in self._metros.values() if m.region_hint is None]

    def distance_km(self, code_a: str, code_b: str) -> float:
        """Memoised inflated fiber distance between two metro codes."""
        if code_a == code_b:
            return 0.0
        key = (code_a, code_b) if code_a < code_b else (code_b, code_a)
        cached = self._dist_cache.get(key)
        if cached is None:
            cached = metro_distance_km(self.get(code_a), self.get(code_b))
            self._dist_cache[key] = cached
        return cached

    def rtt_ms(self, code_a: str, code_b: str) -> float:
        """Memoised round-trip propagation delay between two metro codes."""
        return 2.0 * self.distance_km(code_a, code_b) / FIBER_KM_PER_MS_ONE_WAY

    def nearest(self, metro: Metro, candidates: Optional[Iterable[Metro]] = None) -> Metro:
        """Nearest other metro (among ``candidates``, default: whole catalog)."""
        pool = [m for m in (candidates or self) if m.code != metro.code]
        if not pool:
            raise ValueError("no candidate metros")
        return min(pool, key=lambda m: metro_distance_km(metro, m))


DEFAULT_CATALOG = MetroCatalog()
