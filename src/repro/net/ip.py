"""IPv4 address and prefix primitives.

Everything in the simulator and inference pipeline manipulates IPv4
addresses as plain ``int`` values (0 .. 2**32 - 1) for speed; this module
provides parsing, formatting, prefix arithmetic, and sequential allocators
on top of that representation.

The paper's methodology is prefix-centric: traceroute campaigns target the
``.1`` of every /24 (§3), expansion probing targets the rest of a CBI's /24
(§4.2), and interconnection subnets are /30 or /31 (§4.1, Fig. 2).  The
helpers here exist to make those operations explicit and cheap.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar

IPv4 = int

MAX_IPV4 = (1 << 32) - 1


class AddressError(ValueError):
    """Raised for malformed addresses, prefixes, or exhausted allocators."""


def parse_ip(text: str) -> IPv4:
    """Parse dotted-quad ``text`` into an integer address.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(addr: IPv4) -> str:
    """Format integer ``addr`` as a dotted quad.

    >>> format_ip(167772161)
    '10.0.0.1'
    """
    if not 0 <= addr <= MAX_IPV4:
        raise AddressError(f"address out of range: {addr}")
    return ".".join(
        str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def prefix_mask(length: int) -> int:
    """Return the netmask integer for a prefix of ``length`` bits."""
    if not 0 <= length <= 32:
        raise AddressError(f"prefix length out of range: {length}")
    if length == 0:
        return 0
    return (MAX_IPV4 << (32 - length)) & MAX_IPV4


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix (network address + length) with set-like helpers.

    Instances are canonical: the stored ``network`` always has its host
    bits cleared, so two prefixes covering the same range compare equal.
    """

    network: IPv4
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        mask = prefix_mask(self.length)
        if self.network & ~mask & MAX_IPV4:
            object.__setattr__(self, "network", self.network & mask)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation."""
        if "/" not in text:
            raise AddressError(f"missing length in prefix: {text!r}")
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressError(f"bad prefix length in {text!r}")
        return cls(parse_ip(addr_text), int(len_text))

    @classmethod
    def of(cls, addr: IPv4, length: int) -> "Prefix":
        """Return the /``length`` prefix containing ``addr``."""
        return cls(addr & prefix_mask(length), length)

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    @property
    def first(self) -> IPv4:
        return self.network

    @property
    def last(self) -> IPv4:
        return self.network + self.size - 1

    def __contains__(self, addr: object) -> bool:
        if not isinstance(addr, int):
            return False
        return self.network <= addr <= self.last

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when ``other`` is fully covered by this prefix."""
        return other.length >= self.length and other.network in self

    def overlaps(self, other: "Prefix") -> bool:
        return self.network <= other.last and other.network <= self.last

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Yield the sub-prefixes of ``new_length`` bits, in address order."""
        if new_length < self.length:
            raise AddressError(
                f"cannot subnet /{self.length} into shorter /{new_length}"
            )
        step = 1 << (32 - new_length)
        for network in range(self.network, self.last + 1, step):
            yield Prefix(network, new_length)

    def slash24s(self) -> Iterator["Prefix"]:
        """Yield the /24s covered by the prefix (the paper's probing unit)."""
        if self.length > 24:
            yield Prefix.of(self.network, 24)
            return
        yield from self.subnets(24)

    def addresses(self) -> Iterator[IPv4]:
        return iter(range(self.network, self.last + 1))

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.length}"


def slash24_of(addr: IPv4) -> Prefix:
    """Return the /24 containing ``addr``."""
    return Prefix.of(addr, 24)


def dot1_of_slash24(p24: Prefix) -> IPv4:
    """The campaign target inside a /24: its ``.1`` address (§3)."""
    if p24.length != 24:
        raise AddressError(f"expected a /24, got /{p24.length}")
    return p24.network + 1


def slash24_network(addr: IPv4) -> IPv4:
    """The network *integer* of the /24 containing ``addr``.

    The allocation-free fast path behind the target generators: where a
    caller only needs the /24 key (not a :class:`Prefix` object), one
    mask beats a dataclass construction with ``__post_init__`` checks.
    """
    return addr & 0xFFFFFF00


def dot1_targets(slash24s: Iterable[Prefix]) -> List[IPv4]:
    """The ``.1`` of every /24, converted in one batch (§3 sweep list).

    Equivalent to ``[dot1_of_slash24(p) for p in slash24s]`` minus the
    per-call length validation -- the round-1 generator hands this the
    already-validated sweep universe, where at paper scale (15.6M /24s)
    the per-prefix function-call overhead is the dominant cost.
    """
    return [p.network + 1 for p in slash24s]


class IPv4IntervalSet:
    """A union of prefixes flattened to sorted disjoint intervals.

    Membership is one binary search over the merged interval starts
    instead of a linear ``any(ip in block for block in blocks)`` scan,
    which matters on per-hop paths (cloud-membership checks touch every
    responsive hop of every traceroute).
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, prefixes: Iterable[Prefix]) -> None:
        spans = sorted((p.network, p.last) for p in prefixes)
        starts: List[int] = []
        ends: List[int] = []
        for start, end in spans:
            if ends and start <= ends[-1] + 1:
                if end > ends[-1]:
                    ends[-1] = end
            else:
                starts.append(start)
                ends.append(end)
        self._starts = starts
        self._ends = ends

    def __contains__(self, addr: object) -> bool:
        if not isinstance(addr, int):
            return False
        i = bisect_right(self._starts, addr) - 1
        return i >= 0 and addr <= self._ends[i]

    def __len__(self) -> int:
        """Number of disjoint intervals after merging."""
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)


_LPMValue = TypeVar("_LPMValue")


class PrefixLPMIndex(Generic[_LPMValue]):
    """Longest-prefix match over ``(prefix, value)`` pairs in one probe.

    Built once at construction: because two prefixes either nest or are
    disjoint, a single stack sweep over the prefixes (sorted by network,
    then length) flattens the table into disjoint address segments, each
    carrying the *deepest* covering prefix.  ``lookup`` is then a single
    ``bisect`` over the segment starts -- versus up to 33 per-length
    dict probes for the classic scan-by-descending-length table.

    Duplicate prefixes keep the **last** value, matching the dict
    insertion semantics of the table this index replaced.
    """

    __slots__ = ("_starts", "_leaves")

    def __init__(self, entries: Iterable[Tuple[Prefix, _LPMValue]]) -> None:
        deduped: dict = {}
        for prefix, value in entries:
            deduped[prefix] = value
        items = sorted(
            deduped.items(), key=lambda kv: (kv[0].network, kv[0].length)
        )
        starts: List[int] = []
        leaves: List[Optional[Tuple[Prefix, _LPMValue]]] = []

        def emit(start: int, leaf: Optional[Tuple[Prefix, _LPMValue]]) -> None:
            if starts and starts[-1] == start:
                leaves[-1] = leaf
            else:
                starts.append(start)
                leaves.append(leaf)

        stack: List[Tuple[Prefix, _LPMValue]] = []
        for prefix, value in items:
            while stack and stack[-1][0].last < prefix.network:
                closed = stack.pop()
                emit(closed[0].last + 1, stack[-1] if stack else None)
            emit(prefix.network, (prefix, value))
            stack.append((prefix, value))
        while stack:
            closed = stack.pop()
            boundary = closed[0].last + 1
            if boundary <= MAX_IPV4:
                emit(boundary, stack[-1] if stack else None)
        self._starts = starts
        self._leaves = leaves

    def lookup(self, addr: IPv4) -> Optional[Tuple[Prefix, _LPMValue]]:
        """The longest matching ``(prefix, value)`` pair, or ``None``."""
        i = bisect_right(self._starts, addr) - 1
        if i < 0:
            return None
        return self._leaves[i]

    @property
    def segment_count(self) -> int:
        """Disjoint address segments the table flattened into."""
        return len(self._starts)


# Special-purpose ranges.  The paper deliberately *keeps* private and shared
# address space as probe targets because Amazon uses them internally (§3),
# but annotation maps them to AS0.
PRIVATE_PREFIXES: Tuple[Prefix, ...] = (
    Prefix.parse("10.0.0.0/8"),
    Prefix.parse("172.16.0.0/12"),
    Prefix.parse("192.168.0.0/16"),
)
SHARED_PREFIX = Prefix.parse("100.64.0.0/10")  # RFC 6598 CGN space
LOOPBACK_PREFIX = Prefix.parse("127.0.0.0/8")
MULTICAST_PREFIX = Prefix.parse("224.0.0.0/4")
RESERVED_PREFIX = Prefix.parse("240.0.0.0/4")


#: Interval-set fast paths for the membership tests below: one bisect
#: instead of a per-prefix scan on paths hit once per observed hop.
_PRIVATE_SET = IPv4IntervalSet(PRIVATE_PREFIXES)
_PRIVATE_OR_SHARED_SET = IPv4IntervalSet(PRIVATE_PREFIXES + (SHARED_PREFIX,))


def is_private(addr: IPv4) -> bool:
    """True for RFC1918 space."""
    return addr in _PRIVATE_SET


def is_shared(addr: IPv4) -> bool:
    """True for RFC6598 shared (CGN) space."""
    return addr in SHARED_PREFIX


def is_private_or_shared(addr: IPv4) -> bool:
    """RFC1918 or RFC6598 in a single interval probe (annotation hot path)."""
    return addr in _PRIVATE_OR_SHARED_SET


def is_probe_excluded(addr: IPv4) -> bool:
    """True for ranges the campaign never targets (§3: broadcast/multicast)."""
    return addr in MULTICAST_PREFIX or addr in RESERVED_PREFIX or addr in LOOPBACK_PREFIX


class PrefixAllocator:
    """Sequentially carve equal-length sub-prefixes out of a parent block.

    Used by the world builder to hand out address space to clouds, client
    ASes, IXPs, and interconnect subnets without overlap.
    """

    def __init__(self, parent: Prefix) -> None:
        self.parent = parent
        self._next = parent.network

    def allocate(self, length: int) -> Prefix:
        """Allocate the next free /``length`` block inside the parent."""
        if length < self.parent.length:
            raise AddressError(
                f"cannot allocate /{length} from /{self.parent.length}"
            )
        size = 1 << (32 - length)
        # Align the cursor to the requested block size.
        aligned = (self._next + size - 1) & ~(size - 1) & MAX_IPV4
        if aligned + size - 1 > self.parent.last:
            raise AddressError(
                f"allocator exhausted: /{length} from {self.parent}"
            )
        self._next = aligned + size
        return Prefix(aligned, length)

    @property
    def remaining(self) -> int:
        """Addresses still unallocated in the parent block."""
        return max(0, self.parent.last - self._next + 1)


class AddressPool:
    """Sequential single-address allocator inside a prefix.

    Skips network/broadcast addresses of the enclosing prefix so allocated
    addresses look like ordinary host addresses.
    """

    def __init__(self, prefix: Prefix, skip_edges: bool = True) -> None:
        self.prefix = prefix
        self._skip_edges = skip_edges and prefix.length < 31
        self._next = prefix.network + (1 if self._skip_edges else 0)

    def allocate(self) -> IPv4:
        last_usable = self.prefix.last - (1 if self._skip_edges else 0)
        if self._next > last_usable:
            raise AddressError(f"address pool exhausted: {self.prefix}")
        addr = self._next
        self._next += 1
        return addr

    def allocate_many(self, count: int) -> List[IPv4]:
        return [self.allocate() for _ in range(count)]

    @property
    def remaining(self) -> int:
        last_usable = self.prefix.last - (1 if self._skip_edges else 0)
        return max(0, last_usable - self._next + 1)


@dataclass(frozen=True)
class InterconnectSubnet:
    """A /30 or /31 linking an Amazon border router and a client router.

    ``provider_side``/``client_side`` are the two usable addresses.  Which
    party *owns* the subnet (``provided_by``) drives the inference ambiguity
    of Fig. 2: when Amazon provides the addresses, the client router's
    response carries an Amazon-owned IP and the naive strategy overshoots.
    """

    prefix: Prefix
    provider_side: IPv4
    client_side: IPv4
    provided_by: str  # "client" or "provider"

    def __post_init__(self) -> None:
        if self.prefix.length not in (30, 31):
            raise AddressError(
                f"interconnect subnets are /30 or /31, got /{self.prefix.length}"
            )
        if self.provider_side not in self.prefix or self.client_side not in self.prefix:
            raise AddressError("interconnect addresses outside subnet")
        if self.provider_side == self.client_side:
            raise AddressError("interconnect endpoints must differ")
        if self.provided_by not in ("client", "provider"):
            raise AddressError(f"bad provided_by: {self.provided_by!r}")

    @classmethod
    def carve(
        cls, allocator: PrefixAllocator, provided_by: str, length: int = 30
    ) -> "InterconnectSubnet":
        """Allocate a fresh interconnect subnet from ``allocator``."""
        prefix = allocator.allocate(length)
        if length == 31:
            a, b = prefix.network, prefix.network + 1
        else:
            a, b = prefix.network + 1, prefix.network + 2
        return cls(prefix=prefix, provider_side=a, client_side=b, provided_by=provided_by)
