"""Seeded randomness helpers for deterministic world generation.

Every stochastic choice in the simulator flows through a ``random.Random``
instance owned by the world builder, so a (seed, config) pair fully
determines the world, the measurements, and therefore the benchmark output.
The helpers here provide the skewed distributions the paper's populations
exhibit (CBI counts per AS, customer cone sizes, alias set sizes).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, TypeVar

T = TypeVar("T")


def make_rng(seed: int, *salt: object) -> random.Random:
    """Derive a child RNG from ``seed`` and a salt tuple.

    Child streams keep independent modules (topology vs. measurement noise)
    from perturbing each other when one of them draws more numbers.
    """
    return random.Random((seed, tuple(str(s) for s in salt)).__repr__())


def keyed_uniform(label: str, seed: int, *key: object) -> float:
    """A uniform [0, 1) draw that is a pure function of ``(label, seed, key)``.

    Dataset derivations use this instead of a shared sequential RNG so a
    record's fate is keyed to its *identity* (prefix, ASN, /24), never to
    construction or lookup order -- the digest contract depends on it.
    """
    return random.Random(repr((label, seed) + key)).random()


def bounded_lognormal(
    rng: random.Random, mean: float, sigma: float, lo: int, hi: int
) -> int:
    """Integer draw from a lognormal with target arithmetic mean, clamped.

    ``mean`` is the desired arithmetic mean of the (unclamped) distribution;
    we solve for mu given sigma: E[X] = exp(mu + sigma^2/2).
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    mu = math.log(mean) - sigma * sigma / 2.0
    draw = rng.lognormvariate(mu, sigma)
    return max(lo, min(hi, int(round(draw))))


def zipf_sample(rng: random.Random, n: int, alpha: float = 1.2) -> int:
    """Sample a rank in [1, n] with Zipf weight rank**-alpha."""
    if n < 1:
        raise ValueError("n must be >= 1")
    weights = [r ** -alpha for r in range(1, n + 1)]
    return weighted_choice(rng, list(range(1, n + 1)), weights)


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item with the given (unnormalised) weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights length mismatch")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    x = rng.random() * total
    acc = 0.0
    for item, w in zip(items, weights):
        acc += w
        if x < acc:
            return item
    return items[-1]


def sample_counts(
    rng: random.Random, profile: Dict[T, int], total: int
) -> List[T]:
    """Draw ``total`` items i.i.d. from a census ``profile`` of counts.

    Used to sample per-AS peering profiles from the paper's Table 6 census
    so any world scale preserves the published mixture.
    """
    items = list(profile.keys())
    weights = [float(profile[i]) for i in items]
    return [weighted_choice(rng, items, weights) for _ in range(total)]


def jittered(rng: random.Random, base: float, spread: float) -> float:
    """``base`` plus a non-negative exponential queueing jitter."""
    if spread <= 0:
        return base
    return base + rng.expovariate(1.0 / spread)


def coin(rng: random.Random, p: float) -> bool:
    """Bernoulli draw."""
    return rng.random() < p


def partition_sizes(rng: random.Random, total: int, parts: int) -> List[int]:
    """Split ``total`` into ``parts`` non-negative integers, roughly even."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    cuts = sorted(rng.randrange(total + 1) for _ in range(parts - 1))
    sizes: List[int] = []
    prev = 0
    for c in cuts + [total]:
        sizes.append(c - prev)
        prev = c
    return sizes
