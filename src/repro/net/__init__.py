"""Network primitives: IPv4 addressing, geography/RTT model, AS identity."""

from repro.net.asn import (
    AMAZON_ASNS,
    AMAZON_ORG_ID,
    AMAZON_PRIMARY_ASN,
    AS_UNKNOWN,
    ASInfo,
    ASKind,
    ASRegistry,
    is_amazon_asn,
)
from repro.net.geo import (
    DEFAULT_CATALOG,
    Metro,
    MetroCatalog,
    metro_distance_km,
    propagation_rtt_ms,
)
from repro.net.ip import (
    AddressError,
    AddressPool,
    InterconnectSubnet,
    Prefix,
    PrefixAllocator,
    dot1_of_slash24,
    format_ip,
    is_private,
    is_shared,
    parse_ip,
    slash24_of,
)

__all__ = [
    "AMAZON_ASNS",
    "AMAZON_ORG_ID",
    "AMAZON_PRIMARY_ASN",
    "AS_UNKNOWN",
    "ASInfo",
    "ASKind",
    "ASRegistry",
    "AddressError",
    "AddressPool",
    "DEFAULT_CATALOG",
    "InterconnectSubnet",
    "Metro",
    "MetroCatalog",
    "Prefix",
    "PrefixAllocator",
    "dot1_of_slash24",
    "format_ip",
    "is_amazon_asn",
    "is_private",
    "is_shared",
    "metro_distance_km",
    "parse_ip",
    "propagation_rtt_ms",
    "slash24_of",
]
