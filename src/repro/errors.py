"""The repo-wide error taxonomy.

Failures at campaign scale are routine, so every layer that can fail
classifies its failures instead of letting bare exceptions escape:

* :class:`TransportError` -- the measurement transport misbehaved (a
  worker crashed, a shard timed out or hung, an injected transport
  fault fired).  Retryable: the executor's degradation ladder is
  retry -> quarantine -> salvage.
* :class:`DataError` -- a dataset or checkpoint record was malformed.
  Not retryable; the reader degrades (discards the record) instead.
* :class:`StageError` -- a pipeline stage body raised; carries the
  stage name so a failed study says *where* it died.
* :class:`StudyInterrupted` -- cooperative cancellation (SIGINT /
  SIGTERM / a supervisor deadline).  Never swallowed by retry loops:
  every ``except`` in the executor re-raises it first, journals are
  finalized, and the CLI exits with :data:`EXIT_INTERRUPTED` so
  ``repro study --resume`` can continue where the run stopped.

``classify_error`` maps any exception onto its taxonomy category for
the resilience report; ``wrap_error`` additionally wraps foreign
exceptions so downstream handlers can ``except ReproError``.
"""

from __future__ import annotations

#: CLI exit status of an interrupted-but-resumable study (EX_TEMPFAIL).
EXIT_INTERRUPTED = 75


class ReproError(Exception):
    """Base of the taxonomy; ``category`` feeds the resilience report."""

    category = "error"


class TransportError(ReproError):
    """The measurement transport failed (crash, timeout, hung worker)."""

    category = "transport"


class ShardTimeoutError(TransportError):
    """A pooled shard attempt outlived ``RetryPolicy.shard_timeout``."""

    category = "timeout"


class HungShardError(TransportError):
    """A pooled shard outlived the supervisor's hung-shard horizon.

    Distinct from :class:`ShardTimeoutError`: the per-shard timeout is a
    retry-policy knob (how long one attempt may take), the hung horizon
    is a supervision knob (how long before the study declares the worker
    lost and stops trusting the pool for this shard).
    """

    category = "hung"


class DataError(ReproError):
    """A dataset, journal, or stage-checkpoint record was malformed."""

    category = "data"


class StageError(ReproError):
    """A pipeline stage failed; names the stage that died."""

    category = "stage"

    def __init__(self, stage: str, cause: BaseException) -> None:
        super().__init__(f"stage {stage!r} failed: {cause}")
        self.stage = stage
        self.cause = cause


class StudyInterrupted(ReproError):
    """Cooperative cancellation: SIGINT/SIGTERM or a supervisor budget.

    Raised only at safe points (between shards, between stages) so the
    current journal record is never torn; the pipeline finalizes
    checkpoints and emits a ``study-interrupted`` span on the way out.
    """

    category = "interrupted"

    def __init__(self, reason: str = "interrupted") -> None:
        super().__init__(reason)
        self.reason = reason


class DeadlineExceeded(StudyInterrupted):
    """The study-level deadline budget ran out."""

    category = "deadline"

    def __init__(self, deadline_s: float) -> None:
        super().__init__(f"study deadline of {deadline_s:g}s exceeded")
        self.deadline_s = deadline_s


def classify_error(exc: BaseException) -> str:
    """The taxonomy category of any exception, for failure accounting."""
    if isinstance(exc, ReproError):
        return exc.category
    # stdlib timeouts (multiprocessing.TimeoutError is a TimeoutError
    # subclass on 3.11+, but match both spellings for older pickles).
    import multiprocessing

    if isinstance(exc, (TimeoutError, multiprocessing.TimeoutError)):
        return "timeout"
    return "transport"


def wrap_error(exc: BaseException) -> ReproError:
    """Wrap a foreign exception into the taxonomy (idempotent).

    :class:`StudyInterrupted` (and ``KeyboardInterrupt``) must never be
    converted into a retryable failure; callers re-raise those before
    wrapping -- this helper enforces it as a second line of defense.
    """
    if isinstance(exc, StudyInterrupted):
        raise exc
    if isinstance(exc, ReproError):
        return exc
    category = classify_error(exc)
    if category == "timeout":
        wrapped: ReproError = ShardTimeoutError("shard timeout")
    else:
        wrapped = TransportError(f"{type(exc).__name__}: {exc}")
    wrapped.__cause__ = exc
    return wrapped
