"""Command-line entry point: build a world, run the study, print the report.

::

    repro-study --scale 0.05 --seed 7
    python -m repro --scale 0.1 --expansion-stride 4 --with-bdrmap
    python -m repro lint src/repro          # determinism & purity auditor
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.report import render_report, render_sensitivity
from repro.core.config import StudyConfig
from repro.core.evaluation import evaluate_study
from repro.core.pipeline import AmazonPeeringStudy
from repro.datasets.datafaults import DataFaultPlan
from repro.measure.faults import FaultPlan
from repro.measure.metrics import CampaignProgress, ShardTiming
from repro.world.build import WorldConfig, build_world


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description=(
            "Reproduce the IMC'19 study of Amazon's peering fabric against a "
            "seeded synthetic Internet."
        ),
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's 3,548 peer ASes (default 0.05)")
    parser.add_argument("--seed", type=int, default=7, help="world + campaign seed")
    parser.add_argument("--expansion-stride", type=int, default=4,
                        help="probe every Nth address in expansion /24s (1 = exhaustive)")
    parser.add_argument("--crossval-folds", type=int, default=10)
    parser.add_argument("--skip-vpi", action="store_true",
                        help="skip the multi-cloud VPI detection round")
    parser.add_argument("--skip-crossval", action="store_true")
    parser.add_argument("--workers", type=int, default=1,
                        help="probing worker processes; results are identical "
                             "for any value (default 1 = serial)")
    parser.add_argument("--progress", action="store_true",
                        help="print live campaign progress to stderr")
    parser.add_argument("--fault-plan", type=str, default=None, metavar="SPEC",
                        help="inject deterministic faults, e.g. "
                             "'crash=0.25,slow=0.1,slow-seconds=0.5,"
                             "loss=use1:0.05,rate-limit=0.2,seed=1'")
    parser.add_argument("--shard-timeout", type=float, default=None, metavar="S",
                        help="seconds before a pooled shard attempt is "
                             "abandoned and retried inline")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retries per shard before quarantine (default 2)")
    parser.add_argument("--checkpoint-dir", type=str, default=None, metavar="DIR",
                        help="journal completed shards here so a killed run "
                             "can restart without re-probing them")
    parser.add_argument("--resume", action="store_true",
                        help="replay finished shards from --checkpoint-dir")
    parser.add_argument("--data-fault-plan", type=str, default=None,
                        metavar="SPEC",
                        help="degrade the dataset views deterministically, e.g. "
                             "'bgp-stale=0.1,moas=0.05,as2org-drop=0.1,"
                             "ixp-drop=0.2,ixp-conflict=0.1,whois-gap=0.2,"
                             "whois-nameonly=0.3,seed=1'")
    parser.add_argument("--min-confidence", type=float, default=0.0,
                        metavar="C",
                        help="flag CBIs/ABIs/pins whose annotation confidence "
                             "falls below C in the data-quality block "
                             "(default 0 = no flagging)")
    parser.add_argument("--sensitivity", action="store_true",
                        help="also run a clean twin of the study and print "
                             "paper-table deltas (requires --data-fault-plan)")
    parser.add_argument("--digest", action="store_true",
                        help="print the result's sha256 content digest "
                             "(identical across workers/faults/resume)")
    parser.add_argument("--with-bdrmap", action="store_true",
                        help="also run the bdrmap baseline comparison (section 8)")
    parser.add_argument("--with-evaluation", action="store_true",
                        help="score the study against the world's ground truth")
    return parser


def _progress_printer(min_interval: float = 0.5):
    """A throttled stderr reporter for ``--progress``."""
    last_print = [0.0]

    def report(progress: CampaignProgress, _timing: ShardTiming) -> None:
        now = time.time()
        done = progress.probes >= progress.expected_probes
        if not done and now - last_print[0] < min_interval:
            return
        last_print[0] = now
        print(
            f"  {progress.label}: {progress.probes}/{progress.expected_probes} "
            f"probes ({progress.done_fraction * 100:.0f}%), "
            f"{progress.probes_per_second:.0f}/s, "
            f"{progress.workers} worker(s)",
            file=sys.stderr,
        )

    return report


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Subcommand dispatch: `repro lint [paths...]` runs the
        # determinism & purity auditor instead of the study.
        from repro.devtools.reprolint import main as lint_main

        return lint_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        fault_plan = (
            FaultPlan.parse(args.fault_plan) if args.fault_plan else None
        )
        data_fault_plan = (
            DataFaultPlan.parse(args.data_fault_plan)
            if args.data_fault_plan
            else None
        )
        if args.sensitivity and data_fault_plan is None:
            raise ValueError("--sensitivity requires --data-fault-plan")
        config = StudyConfig(
            scale=args.scale,
            seed=args.seed,
            expansion_stride=args.expansion_stride,
            crossval_folds=args.crossval_folds,
            run_vpi=not args.skip_vpi,
            run_crossval=not args.skip_crossval,
            workers=args.workers,
            fault_plan=fault_plan,
            shard_timeout=args.shard_timeout,
            max_retries=args.max_retries,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            data_fault_plan=data_fault_plan,
            min_confidence=args.min_confidence,
        )
    except ValueError as exc:
        parser.error(str(exc))
    t0 = time.time()
    print(f"building world (scale={args.scale}, seed={args.seed})...", file=sys.stderr)
    world = build_world(WorldConfig(scale=args.scale, seed=args.seed))
    print(
        f"  {len(world.client_ases)} peer ASes, "
        f"{len(world.interconnections)} interconnections, "
        f"{len(world.interfaces)} interfaces "
        f"({time.time() - t0:.1f}s)",
        file=sys.stderr,
    )

    study = AmazonPeeringStudy(
        world,
        config,
        progress=_progress_printer() if args.progress else None,
    )
    print("running the measurement study...", file=sys.stderr)
    result = study.run()
    print(render_report(result, study.relationships))
    if args.digest:
        print(f"study digest: {result.digest()}")

    if args.sensitivity:
        print("running the clean twin for the sensitivity report...",
              file=sys.stderr)
        clean_config = config.replace(
            data_fault_plan=None,
            min_confidence=0.0,
            checkpoint_dir=None,
            resume=False,
        )
        clean_result = AmazonPeeringStudy(world, clean_config).run()
        print()
        print(render_sensitivity(clean_result, result))

    if args.with_bdrmap:
        from repro.bdrmap import BdrmapEngine, compare

        print("\nrunning the bdrmap baseline (section 8)...", file=sys.stderr)
        engine = BdrmapEngine(world, study.bgp_r2, study.relationships, study.engine)
        bdr = engine.run_all()
        home = {
            ip
            for ip in bdr.flip_interfaces()
            if study.bgp_r2.origin_of(ip) in study.cloud_annotators
            or study.annotator_r2.is_home(study.annotator_r2.annotate(ip))
        }
        cmp = compare(bdr, result, study.relationships, home_announced=home)
        print("\nbdrmap comparison (section 8)")
        print(f"  bdrmap: {cmp.bdrmap_abis} ABIs, {cmp.bdrmap_cbis} CBIs, {cmp.bdrmap_ases} ASes")
        print(f"  ours:   {cmp.ours_abis} ABIs, {cmp.ours_cbis} CBIs, {cmp.ours_ases} ASes")
        print(f"  common: {cmp.common_abis} ABIs, {cmp.common_cbis} CBIs, {cmp.common_ases} ASes")
        print(f"  AS0-owner CBIs: {cmp.as0_owner_cbis}; conflicting owners: "
              f"{cmp.conflicting_owner_cbis} (max {cmp.max_owners_per_cbi} owners)")
        print(f"  ABI/CBI flips across regions: {cmp.flip_interfaces}")

    if args.with_evaluation:
        ev = evaluate_study(world, result)
        print("\nground-truth evaluation (not available to the paper's authors)")
        print(f"  ABI precision {ev.borders.abi_precision * 100:.1f}%  recall {ev.borders.abi_recall * 100:.1f}%")
        print(f"  CBI precision {ev.borders.cbi_precision * 100:.1f}%  recall {ev.borders.cbi_recall * 100:.1f}%"
              f"  (near-misses on client routers: {ev.borders.cbi_near_misses})")
        print(f"  pinning accuracy {ev.pinning.accuracy * 100:.1f}% over {ev.pinning.evaluated} interfaces")
        print(f"  VPI lower bound: detected {ev.vpi.detected_true}/{ev.vpi.true_vpi_cbis} true VPI ports "
              f"({ev.vpi.lower_bound_tightness * 100:.0f}%); "
              f"recall of detectable ports {ev.vpi.recall_of_detectable * 100:.0f}%")
        print(f"  interconnections never observed: {ev.unobserved_interconnections} "
              f"(of which {ev.private_vpi_interconnections} private-address VPIs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
