"""Command-line entry point: build a world, run the study, print the report.

::

    repro-study --scale 0.05 --seed 7
    python -m repro --config study.toml --workers 4   # flags override the file
    python -m repro --scale 0.1 --expansion-stride 4 --with-bdrmap
    python -m repro --trace-out trace.json            # Perfetto-loadable trace
    python -m repro trace trace.json                  # self-time + probe funnel
    python -m repro lint src/repro          # determinism & purity auditor
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.analysis.report import render_report, render_salvage, render_sensitivity
from repro.core.config import StudyConfig
from repro.core.evaluation import evaluate_study
from repro.core.pipeline import AmazonPeeringStudy
from repro.core.stages import STAGE_ORDER
from repro.datasets.datafaults import DataFaultPlan
from repro.errors import EXIT_INTERRUPTED, StudyInterrupted
from repro.measure.faults import FaultPlan
from repro.measure.supervise import StudySupervisor
from repro.measure.sink import EventSink
from repro.world.build import WorldConfig, build_world

if TYPE_CHECKING:
    from repro.measure.metrics import CampaignProgress, ShardTiming
    from repro.obs.span import SpanRecord


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description=(
            "Reproduce the IMC'19 study of Amazon's peering fabric against a "
            "seeded synthetic Internet."
        ),
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's 3,548 peer ASes (default 0.05)")
    parser.add_argument("--seed", type=int, default=7, help="world + campaign seed")
    parser.add_argument("--expansion-stride", type=int, default=4,
                        help="probe every Nth address in expansion /24s (1 = exhaustive)")
    parser.add_argument("--crossval-folds", type=int, default=10)
    parser.add_argument("--skip-vpi", action="store_true",
                        help="skip the multi-cloud VPI detection round")
    parser.add_argument("--skip-crossval", action="store_true")
    parser.add_argument("--workers", type=int, default=1,
                        help="probing worker processes; results are identical "
                             "for any value (default 1 = serial)")
    parser.add_argument("--progress", action="store_true",
                        help="print live campaign progress to stderr")
    parser.add_argument("--fault-plan", type=str, default=None, metavar="SPEC",
                        help="inject deterministic faults, e.g. "
                             "'crash=0.25,slow=0.1,slow-seconds=0.5,"
                             "loss=use1:0.05,rate-limit=0.2,seed=1'")
    parser.add_argument("--shard-timeout", type=float, default=None, metavar="S",
                        help="seconds before a pooled shard attempt is "
                             "abandoned and retried inline")
    parser.add_argument("--max-retries", type=int, default=2,
                        help="retries per shard before quarantine (default 2)")
    parser.add_argument("--checkpoint-dir", type=str, default=None, metavar="DIR",
                        help="journal completed shards here so a killed run "
                             "can restart without re-probing them")
    parser.add_argument("--resume", action="store_true",
                        help="replay finished shards and completed stages "
                             "from --checkpoint-dir")
    parser.add_argument("--salvage", action="store_true",
                        help="do not probe at all: rebuild a partial report "
                             "from the stage checkpoints in --checkpoint-dir")
    parser.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="wall-clock budget for the study; exceeding it "
                             "stops at the next stage/shard boundary with a "
                             f"resumable exit (code {EXIT_INTERRUPTED})")
    parser.add_argument("--retry-budget", type=int, default=None, metavar="N",
                        help="study-wide cap on shard retries across all "
                             "campaigns (per-shard --max-retries still applies)")
    parser.add_argument("--hung-shard-after", type=float, default=None,
                        metavar="S",
                        help="declare a pooled shard hung after S seconds of "
                             "silence and retry it inline (supervision "
                             "horizon, distinct from --shard-timeout)")
    parser.add_argument("--abort-after-stage", type=str, default=None,
                        metavar="STAGE", choices=sorted(STAGE_ORDER),
                        help="chaos hook: request a graceful interrupt right "
                             "after STAGE completes (for resume testing)")
    parser.add_argument("--kill-after-stage", type=str, default=None,
                        metavar="STAGE", choices=sorted(STAGE_ORDER),
                        help="chaos hook: SIGKILL this process right after "
                             "STAGE completes (for crash-resume testing)")
    parser.add_argument("--adaptive", action="store_true",
                        help="engage the adaptive control plane: per-region "
                             "circuit breakers over a deterministic health "
                             "ledger, probe deferral behind open breakers, "
                             "and a bounded re-probe recovery stage "
                             "(DESIGN.md 6.6); off = historical digest")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        metavar="N",
                        help="consecutive rate-limit fingerprints that open "
                             "a region's breaker (default 3)")
    parser.add_argument("--recovery-rounds", type=int, default=1,
                        metavar="N",
                        help="bounded re-probe rounds after round 2 "
                             "(default 1; 0 = defer-only, deferred probes "
                             "heal via the salt-0 fallback)")
    parser.add_argument("--data-fault-plan", type=str, default=None,
                        metavar="SPEC",
                        help="degrade the dataset views deterministically, e.g. "
                             "'bgp-stale=0.1,moas=0.05,as2org-drop=0.1,"
                             "ixp-drop=0.2,ixp-conflict=0.1,whois-gap=0.2,"
                             "whois-nameonly=0.3,seed=1'")
    parser.add_argument("--min-confidence", type=float, default=0.0,
                        metavar="C",
                        help="flag CBIs/ABIs/pins whose annotation confidence "
                             "falls below C in the data-quality block "
                             "(default 0 = no flagging)")
    parser.add_argument("--sensitivity", action="store_true",
                        help="also run a clean twin of the study and print "
                             "paper-table deltas (requires --data-fault-plan)")
    parser.add_argument("--digest", action="store_true",
                        help="print the result's sha256 content digest "
                             "(identical across workers/faults/resume)")
    parser.add_argument("--with-bdrmap", action="store_true",
                        help="also run the bdrmap baseline comparison (section 8)")
    parser.add_argument("--with-evaluation", action="store_true",
                        help="score the study against the world's ground truth")
    parser.add_argument("--config", type=str, default=None, metavar="FILE",
                        help="load study configuration from a TOML file "
                             "(see StudyConfig.to_toml); explicit CLI flags "
                             "override the file's values")
    parser.add_argument("--no-shared-annotation-cache", action="store_true",
                        help="give every annotator a private cache instead of "
                             "sharing one across the round-2 and VPI "
                             "annotators (digest-identical either way)")
    parser.add_argument("--trace", action="store_true",
                        help="record fine-grained worker-side spans (probe "
                             "batches, fault delays); coarse spans are always "
                             "recorded and tracing never changes the digest")
    parser.add_argument("--trace-out", type=str, default=None, metavar="FILE",
                        help="write the study's span trace: *.jsonl -> JSONL, "
                             "anything else -> Chrome trace JSON loadable in "
                             "Perfetto/about:tracing (implies --trace)")
    return parser


def _config_defaults(config: StudyConfig) -> Dict[str, Any]:
    """Map a file-loaded ``StudyConfig`` onto parser defaults.

    Applied via ``parser.set_defaults`` *before* parsing, so any flag the
    user types overrides the file while everything else inherits from it.
    """
    return {
        "scale": config.scale if config.scale is not None else 0.05,
        "seed": config.seed,
        "expansion_stride": config.expansion_stride,
        "crossval_folds": config.crossval_folds,
        "skip_vpi": not config.run_vpi,
        "skip_crossval": not config.run_crossval,
        "workers": config.workers,
        "fault_plan": (
            config.fault_plan.to_spec() if config.fault_plan else None
        ),
        "shard_timeout": config.shard_timeout,
        "max_retries": config.max_retries,
        "checkpoint_dir": config.checkpoint_dir,
        "resume": config.resume,
        "deadline": config.deadline_s,
        "retry_budget": config.retry_budget,
        "hung_shard_after": config.hung_shard_after_s,
        "adaptive": config.adaptive,
        "breaker_threshold": config.breaker_threshold,
        "recovery_rounds": config.recovery_rounds,
        "data_fault_plan": (
            config.data_fault_plan.to_spec() if config.data_fault_plan else None
        ),
        "min_confidence": config.min_confidence,
        "no_shared_annotation_cache": not config.shared_annotation_cache,
        "trace": config.trace,
        "trace_out": config.trace_out,
    }


class _ProgressPrinter(EventSink):
    """Throttled stderr progress for ``--progress``.

    Per-shard lines are throttled to ``min_interval``, but every campaign
    also gets a guaranteed terminal line: the campaign span closing
    carries the final counters, so the last update can no longer be
    swallowed by the throttle -- or skipped entirely when the final shard
    is quarantined and never merges.
    """

    def __init__(self, min_interval: float = 0.5) -> None:
        self._min_interval = min_interval
        self._last_time = 0.0
        #: campaign label -> probes shown on its most recent line, so
        #: the terminal flush prints only when something new happened.
        self._last_probes: Dict[str, int] = {}

    def on_shard_merged(
        self, progress: CampaignProgress, _timing: ShardTiming
    ) -> None:
        now = time.time()
        done = progress.probes >= progress.expected_probes
        if not done and now - self._last_time < self._min_interval:
            return
        self._last_time = now
        self._line(
            progress.label,
            probes=progress.probes,
            expected=progress.expected_probes,
            rate=progress.probes_per_second,
            workers=progress.workers,
        )

    def on_span_closed(self, record: SpanRecord) -> None:
        if record.category != "campaign":
            return
        label = record.name.partition(":")[2] or record.name
        probes = int(record.counter("probes"))
        if self._last_probes.get(label) == probes:
            return  # the final merge already printed this state
        lost = int(record.counter("lost"))
        self._line(
            label,
            probes=probes,
            expected=int(record.counter("expected")),
            rate=probes / record.duration if record.duration > 0 else 0.0,
            workers=int(record.counter("workers")),
            lost=lost,
        )

    def _line(
        self,
        label: str,
        probes: int,
        expected: int,
        rate: float,
        workers: int,
        lost: int = 0,
    ) -> None:
        fraction = probes / expected if expected else 1.0
        text = (
            f"  {label}: {probes}/{expected} probes "
            f"({fraction * 100:.0f}%), {rate:.0f}/s, {workers} worker(s)"
        )
        if lost:
            text += f", {lost} probe(s) lost to quarantine"
        print(text, file=sys.stderr)
        self._last_probes[label] = probes


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Subcommand dispatch: `repro lint [paths...]` runs the
        # determinism & purity auditor instead of the study.
        from repro.devtools.reprolint import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "audit":
        # `repro audit` runs the whole-program auditor: import-graph
        # layering plus the schema and API lockfile passes.
        from repro.devtools.audit.driver import main as audit_main

        return audit_main(argv[1:])
    if argv and argv[0] == "trace":
        # `repro trace <file>` renders the self-time table and probe
        # funnel of a trace written by --trace-out.
        from repro.obs.analyze import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "bench":
        # `repro bench [scenario...|--compare old new]` runs the perf
        # scenarios and writes/diffs BENCH_<scenario>.json reports.
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "study":
        # `repro study ...` is the explicit spelling of the default
        # subcommand (the resume/salvage docs use it throughout).
        argv = argv[1:]
    parser = build_parser()
    # First pass: find --config so the file's values become the parser
    # defaults; any flag the user actually types then overrides the file.
    pre = argparse.ArgumentParser(add_help=False)
    pre.add_argument("--config", type=str, default=None)
    pre_args, _ = pre.parse_known_args(argv)
    file_config: Optional[StudyConfig] = None
    if pre_args.config:
        try:
            file_config = StudyConfig.from_file(pre_args.config)
        except (OSError, RuntimeError, TypeError, ValueError) as exc:
            parser.error(f"--config: {exc}")
        parser.set_defaults(**_config_defaults(file_config))
    args = parser.parse_args(argv)
    # Spell these two out before StudyConfig validation gets a chance:
    # the operator fixing a dead run at 3am deserves the exact flag name.
    if args.resume and not args.checkpoint_dir:
        parser.error(
            "--resume replays journals and stage checkpoints from a "
            "checkpoint directory; pass --checkpoint-dir DIR (the same "
            "one the interrupted run used)"
        )
    if args.salvage and not args.checkpoint_dir:
        parser.error(
            "--salvage rebuilds a partial report from stage checkpoints; "
            "pass --checkpoint-dir DIR (the same one the interrupted "
            "run used)"
        )
    try:
        fault_plan = (
            FaultPlan.parse(args.fault_plan) if args.fault_plan else None
        )
        data_fault_plan = (
            DataFaultPlan.parse(args.data_fault_plan)
            if args.data_fault_plan
            else None
        )
        if args.sensitivity and data_fault_plan is None:
            raise ValueError("--sensitivity requires --data-fault-plan")
        config = StudyConfig(
            scale=args.scale,
            seed=args.seed,
            expansion_stride=args.expansion_stride,
            crossval_folds=args.crossval_folds,
            run_vpi=not args.skip_vpi,
            run_crossval=not args.skip_crossval,
            workers=args.workers,
            fault_plan=fault_plan,
            shard_timeout=args.shard_timeout,
            max_retries=args.max_retries,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume or args.salvage,
            deadline_s=args.deadline,
            retry_budget=args.retry_budget,
            hung_shard_after_s=args.hung_shard_after,
            adaptive=args.adaptive,
            breaker_threshold=args.breaker_threshold,
            recovery_rounds=args.recovery_rounds,
            data_fault_plan=data_fault_plan,
            min_confidence=args.min_confidence,
            shared_annotation_cache=not args.no_shared_annotation_cache,
            retry_backoff_s=(
                file_config.retry_backoff_s
                if file_config is not None
                else 0.05
            ),
            trace=args.trace,
            trace_out=args.trace_out,
        )
    except ValueError as exc:
        parser.error(str(exc))
    t0 = time.time()
    print(f"building world (scale={args.scale}, seed={args.seed})...", file=sys.stderr)
    world = build_world(WorldConfig(scale=args.scale, seed=args.seed))
    print(
        f"  {len(world.client_ases)} peer ASes, "
        f"{len(world.interconnections)} interconnections, "
        f"{len(world.interfaces)} interfaces "
        f"({time.time() - t0:.1f}s)",
        file=sys.stderr,
    )

    supervisor = StudySupervisor(
        deadline_s=config.deadline_s,
        retry_budget=config.retry_budget,
        hung_shard_after_s=config.hung_shard_after_s,
        handle_signals=True,
        abort_after_stage=args.abort_after_stage,
        kill_after_stage=args.kill_after_stage,
    )
    study = AmazonPeeringStudy(
        world,
        config,
        events=_ProgressPrinter() if args.progress else None,
        supervisor=supervisor,
    )
    if args.salvage:
        print("salvaging from stage checkpoints (no probing)...",
              file=sys.stderr)
        result, recovered = study.salvage()
        print(render_salvage(result, recovered))
        if args.digest:
            print(f"study digest: {result.digest()}")
        return 0
    print("running the measurement study...", file=sys.stderr)
    try:
        result = study.run()
    except StudyInterrupted as exc:
        done = len(supervisor.stages_completed)
        print(f"study interrupted ({exc}); {done} stage(s) checkpointed",
              file=sys.stderr)
        if config.checkpoint_dir:
            print(
                f"resume with: repro study --resume "
                f"--checkpoint-dir {config.checkpoint_dir} "
                f"(or --salvage for a partial report)",
                file=sys.stderr,
            )
        else:
            print("(no --checkpoint-dir: nothing was persisted; a rerun "
                  "starts from scratch)", file=sys.stderr)
        return EXIT_INTERRUPTED
    print(render_report(result, study.relationships))
    if args.trace_out:
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    if args.digest:
        print(f"study digest: {result.digest()}")

    if args.sensitivity:
        print("running the clean twin for the sensitivity report...",
              file=sys.stderr)
        clean_config = config.replace(
            data_fault_plan=None,
            min_confidence=0.0,
            checkpoint_dir=None,
            resume=False,
            # The twin must not overwrite the main run's trace file.
            trace=False,
            trace_out=None,
        )
        clean_result = AmazonPeeringStudy(world, clean_config).run()
        print()
        print(render_sensitivity(clean_result, result))

    if args.with_bdrmap:
        from repro.bdrmap import BdrmapEngine, compare

        print("\nrunning the bdrmap baseline (section 8)...", file=sys.stderr)
        engine = BdrmapEngine(world, study.bgp_r2, study.relationships, study.engine)
        bdr = engine.run_all()
        home = {
            ip
            for ip in bdr.flip_interfaces()
            if study.bgp_r2.origin_of(ip) in study.cloud_annotators
            or study.annotator_r2.is_home(study.annotator_r2.annotate(ip))
        }
        cmp = compare(bdr, result, study.relationships, home_announced=home)
        print("\nbdrmap comparison (section 8)")
        print(f"  bdrmap: {cmp.bdrmap_abis} ABIs, {cmp.bdrmap_cbis} CBIs, {cmp.bdrmap_ases} ASes")
        print(f"  ours:   {cmp.ours_abis} ABIs, {cmp.ours_cbis} CBIs, {cmp.ours_ases} ASes")
        print(f"  common: {cmp.common_abis} ABIs, {cmp.common_cbis} CBIs, {cmp.common_ases} ASes")
        print(f"  AS0-owner CBIs: {cmp.as0_owner_cbis}; conflicting owners: "
              f"{cmp.conflicting_owner_cbis} (max {cmp.max_owners_per_cbi} owners)")
        print(f"  ABI/CBI flips across regions: {cmp.flip_interfaces}")

    if args.with_evaluation:
        ev = evaluate_study(world, result)
        print("\nground-truth evaluation (not available to the paper's authors)")
        print(f"  ABI precision {ev.borders.abi_precision * 100:.1f}%  recall {ev.borders.abi_recall * 100:.1f}%")
        print(f"  CBI precision {ev.borders.cbi_precision * 100:.1f}%  recall {ev.borders.cbi_recall * 100:.1f}%"
              f"  (near-misses on client routers: {ev.borders.cbi_near_misses})")
        print(f"  pinning accuracy {ev.pinning.accuracy * 100:.1f}% over {ev.pinning.evaluated} interfaces")
        print(f"  VPI lower bound: detected {ev.vpi.detected_true}/{ev.vpi.true_vpi_cbis} true VPI ports "
              f"({ev.vpi.lower_bound_tightness * 100:.0f}%); "
              f"recall of detectable ports {ev.vpi.recall_of_detectable * 100:.0f}%")
        print(f"  interconnections never observed: {ev.unobserved_interconnections} "
              f"(of which {ev.private_vpi_interconnections} private-address VPIs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
